#include "gossip/protocol.hpp"

#include <algorithm>

#include "bloom/wire.hpp"
#include "util/logging.hpp"

namespace planetp::gossip {

Protocol::Protocol(PeerId self, GossipConfig config, Rng rng)
    : config_(config), directory_(self), rng_(rng), interval_(config.base_interval) {}

// ---------------------------------------------------------------------------
// Local events
// ---------------------------------------------------------------------------

void Protocol::local_join(std::string address, LinkClass link_class, std::uint32_t key_count,
                          std::vector<std::uint8_t> filter_wire, TimePoint now) {
  PeerRecord record;
  record.id = directory_.self();
  record.address = std::move(address);
  record.link_class = link_class;
  record.version = 1;
  record.key_count = key_count;
  record.filter_wire = std::move(filter_wire);
  self_class_ = link_class;
  directory_.put_self(record);

  FilterUpdate full;
  full.base_version = 0;
  full.bits = record.filter_wire;
  full.key_count = key_count;
  full.new_keys = key_count;
  make_hot(intern_rumor(payload_from_record(record, EventKind::kJoin, std::move(full))));
  (void)now;
}

void Protocol::quiet_start(std::string address, LinkClass link_class, std::uint32_t key_count,
                           std::vector<std::uint8_t> filter_wire) {
  PeerRecord record;
  record.id = directory_.self();
  record.address = std::move(address);
  record.link_class = link_class;
  record.version = 1;
  record.key_count = key_count;
  record.filter_wire = std::move(filter_wire);
  self_class_ = link_class;
  directory_.put_self(record);
}

void Protocol::local_filter_change(std::uint32_t key_count, std::uint32_t new_keys,
                                   std::vector<std::uint8_t> diff_bits,
                                   std::vector<std::uint8_t> full_filter_wire, TimePoint now) {
  PeerRecord* self = directory_.find_mutable(directory_.self());
  if (self == nullptr) return;  // must local_join first
  const std::uint64_t base_version = self->version;
  ++self->version;
  self->key_count = key_count;
  if (!full_filter_wire.empty()) self->filter_wire = std::move(full_filter_wire);

  FilterUpdate update;
  update.key_count = key_count;
  update.new_keys = new_keys;
  if (!diff_bits.empty()) {
    update.base_version = base_version;
    update.bits = std::move(diff_bits);
  } else {
    // Simulation mode: no real bits; sizes are modeled from new_keys, and we
    // still advertise the diff semantics via base_version.
    update.base_version = base_version;
  }
  make_hot(intern_rumor(payload_from_record(*self, EventKind::kFilterChange, std::move(update))));
  // Local news restarts eager gossiping just like received news does.
  reset_interval();
  (void)now;
}

void Protocol::local_rejoin(TimePoint now) {
  PeerRecord* self = directory_.find_mutable(directory_.self());
  if (self == nullptr) return;
  ++self->version;
  self->online = true;
  make_hot(intern_rumor(payload_from_record(*self, EventKind::kRejoin)));
  // A returning peer gossips eagerly to catch up and to spread its presence,
  // and prioritizes anti-entropy until it has synced the events it missed.
  reset_interval();
  catch_up_pending_ = true;
  pending_pull_.reset();
  (void)now;
}

Protocol::Outgoing Protocol::join_via(PeerId introducer, TimePoint now) {
  // The §3 join flow pulls the directory before anything else; prioritize
  // anti-entropy (with retries, below) until that pull completes.
  catch_up_pending_ = true;
  pending_pull_.reset();
  return issue_summary_request(introducer, now);
}

Protocol::Outgoing Protocol::issue_summary_request(PeerId target, TimePoint now) {
  const int attempts = pending_pull_ ? pending_pull_->attempts + 1 : 1;
  // Exponential backoff per unanswered attempt; the shift is capped so the
  // wait stays sane whatever max_ae_retries is configured to. Counted in
  // rounds, not wall-clock, so it scales with the gossip interval.
  const std::uint64_t wait =
      static_cast<std::uint64_t>(config_.ae_retry_rounds) << std::min(attempts - 1, 6);
  pending_pull_ = PendingPull{target, round_counter_ + wait, attempts};
  (void)now;
  SummaryRequestMsg req;
  // Advertise our shared-base token: a replier holding the same base answers
  // with a delta-only summary (O(changed) entries instead of O(peers)).
  if (config_.delta_summaries) req.base_token = directory_.base_token();
  return Outgoing{target, req};
}

void Protocol::bootstrap(const std::vector<PeerRecord>& records) {
  for (const PeerRecord& r : records) {
    if (r.id == directory_.self()) continue;
    directory_.apply(r);
  }
}

void Protocol::bootstrap_converged(DirectoryBasePtr base) {
  // One shared immutable snapshot replaces per-peer record copies: N peers
  // bootstrapping a converged community cost O(N) total, not O(N^2), and the
  // steady-state anti-entropy between them compares deltas (docs/SCALE.md).
  // The base must contain our own record (quiet_start state is discarded).
  directory_.adopt_base(std::move(base));
  if (const PeerRecord* self = directory_.find(directory_.self()); self != nullptr) {
    self_class_ = self->link_class;
  }
}

std::uint64_t Protocol::own_version() const {
  const PeerRecord* self = directory_.find(directory_.self());
  return self == nullptr ? 0 : self->version;
}

// ---------------------------------------------------------------------------
// Rumor bookkeeping
// ---------------------------------------------------------------------------

void Protocol::make_hot(RumorPtr p) {
  const RumorId id = p->id();
  // A newer version of the same origin supersedes any older hot rumor. Scan
  // hot_order_ (stable insertion order), not the hash map, so behavior never
  // depends on hash layout.
  for (std::size_t i = 0; i < hot_order_.size();) {
    const RumorId cur = hot_order_[i];
    if (cur.origin == id.origin && cur.version < id.version) {
      hot_.erase(cur);
      hot_order_.erase(hot_order_.begin() + static_cast<std::ptrdiff_t>(i));
      if (cur.origin == directory_.self()) --self_hot_count_;
    } else {
      ++i;
    }
  }
  if (hot_.contains(id)) return;
  // Membership announcements (join/rejoin) introduce the origin's address;
  // until a receiver has it, any RumorWant it sends back has nowhere to go
  // (net::LiveNode routes by directory address). Such rumors bootstrap
  // eagerly in every rumor mode — see the "introduce" rule in on_round.
  HotRumor hot;
  hot.introduce = p->payload().kind != EventKind::kFilterChange;
  hot.rumor = std::move(p);
  hot_.emplace(id, std::move(hot));
  hot_order_.push_back(id);
  if (id.origin == directory_.self()) ++self_hot_count_;
}

void Protocol::retire_rumor(const RumorId& id) {
  auto it = hot_.find(id);
  if (it == hot_.end()) return;
  hot_.erase(it);
  hot_order_.erase(std::find(hot_order_.begin(), hot_order_.end(), id));
  if (id.origin == directory_.self()) --self_hot_count_;
  note_recent(id);
}

void Protocol::note_recent(const RumorId& id) {
  if (recent_set_.contains(id)) return;
  recent_.push_back(id);
  recent_set_.insert(id);
  while (recent_.size() > config_.partial_ae_window) {
    recent_set_.erase(recent_.front());
    recent_.pop_front();
  }
}

void Protocol::reset_interval() {
  interval_ = config_.base_interval;
  gossipless_count_ = 0;
}

void Protocol::register_gossipless_contact() {
  if (!config_.adaptive_interval) return;
  if (++gossipless_count_ >= config_.gossipless_threshold) {
    interval_ = std::min(interval_ + config_.slow_down, config_.max_interval);
    gossipless_count_ = 0;
  }
}

// ---------------------------------------------------------------------------
// Target selection (flat and bandwidth-aware, §7.2)
// ---------------------------------------------------------------------------

bool Protocol::has_local_origin_rumor() const { return self_hot_count_ != 0; }

PeerId Protocol::pick_rumor_target() {
  if (!config_.bandwidth_aware) return directory_.random_online(rng_);
  if (self_class_ == LinkClass::kFast) {
    const LinkClass cls =
        rng_.chance(config_.fast_to_slow_prob) ? LinkClass::kSlow : LinkClass::kFast;
    const PeerId id = directory_.random_online_of_class(rng_, cls);
    return id != kInvalidPeer ? id : directory_.random_online(rng_);
  }
  // Slow peer: rumor to slow peers so as not to impede fast ones — unless we
  // originated the rumor, in which case the first hop is a fast peer.
  if (has_local_origin_rumor()) {
    const PeerId id = directory_.random_online_of_class(rng_, LinkClass::kFast);
    if (id != kInvalidPeer) return id;
  }
  const PeerId id = directory_.random_online_of_class(rng_, LinkClass::kSlow);
  return id != kInvalidPeer ? id : directory_.random_online(rng_);
}

PeerId Protocol::pick_ae_target() {
  if (!config_.bandwidth_aware) return directory_.random_online(rng_);
  if (self_class_ == LinkClass::kFast) {
    const PeerId id = directory_.random_online_of_class(rng_, LinkClass::kFast);
    return id != kInvalidPeer ? id : directory_.random_online(rng_);
  }
  return directory_.random_online(rng_);  // slow peers AE with anyone
}

// ---------------------------------------------------------------------------
// Rounds
// ---------------------------------------------------------------------------

std::vector<Protocol::Outgoing> Protocol::on_round(TimePoint now) {
  std::vector<Outgoing> out;
  ++round_counter_;

  for (PeerId dropped : directory_.expire_dead(now, config_.t_dead)) {
    pull_cache_.erase(dropped);
    if (hooks_.on_expire) hooks_.on_expire(dropped);
  }

  if (!config_.enable_rumoring) {
    // Pure anti-entropy baseline (LAN-AE): push our summary every round.
    const PeerId target = pick_ae_target();
    if (target == kInvalidPeer) return out;
    SummaryMsg push_msg;
    push_msg.entries = directory_.summary_entries();
    push_msg.push = true;
    out.push_back(Outgoing{target, std::move(push_msg)});
    return out;
  }

  // Catch-up anti-entropy (after join/rejoin): issue a summary pull, and if
  // its reply never arrives — lossy link, partition — retry against a fresh
  // target with backoff. Bounded: after max_ae_retries unanswered attempts
  // we abandon the priority and fall back to the normal cadence, whose
  // idle-round anti-entropy below still converges us eventually.
  if (catch_up_pending_) {
    bool reissue = !pending_pull_.has_value();
    const PeerId last_target = pending_pull_ ? pending_pull_->target : kInvalidPeer;
    if (pending_pull_ && round_counter_ >= pending_pull_->retry_round) {
      // Abandon the priority only when the normal cadence below can take
      // over. A peer that knows nobody else — restarted with a lost
      // directory, its one join message to the introducer lost too — must
      // keep retrying that introducer or it is isolated forever.
      if (pending_pull_->attempts >= config_.max_ae_retries &&
          directory_.online_count() > 1) {
        catch_up_pending_ = false;
        pending_pull_.reset();
      } else {
        reissue = true;
      }
    }
    if (reissue) {
      PeerId target = pick_ae_target();
      if (target == kInvalidPeer) target = last_target;
      if (target != kInvalidPeer) {
        out.push_back(issue_summary_request(target, now));
        return out;
      }
    }
    if (catch_up_pending_) {
      // Pull outstanding and not yet timed out: spend the round rumoring
      // (e.g. our own rejoin) instead of duplicating the request.
      if (hot_.empty()) return out;
    }
  }

  const bool do_ae =
      hot_.empty() || (config_.anti_entropy_every > 0 &&
                       round_counter_ % static_cast<std::uint64_t>(config_.anti_entropy_every) == 0);

  if (do_ae) {
    // Occasionally probe a peer believed offline: offline beliefs are never
    // gossiped (§3), so after a partition heals no one would otherwise
    // re-contact the other side until T_dead erased it.
    PeerId target = kInvalidPeer;
    if (config_.offline_probe_prob > 0.0 && rng_.chance(config_.offline_probe_prob)) {
      target = directory_.random_offline(rng_);
    }
    if (target == kInvalidPeer) target = pick_ae_target();
    if (target == kInvalidPeer) return out;
    out.push_back(issue_summary_request(target, now));
    return out;
  }

  const PeerId target = pick_rumor_target();
  if (target == kInvalidPeer) return out;
  static const SizeModel kSizes{};

  if (config_.rumor_mode == RumorMode::kEager) {
    RumorMsg msg;
    // Fill the message up to the byte budget (at least one payload): tiny
    // rejoin records batch by the hundreds, bulky filter payloads by a few.
    std::size_t budget = config_.max_rumor_bytes_per_message;
    std::size_t take = 0;
    for (; take < hot_order_.size(); ++take) {
      HotRumor& hot = hot_.at(hot_order_[take]);
      const std::size_t cost = payload_wire_size(hot.rumor->payload(), kSizes);
      if (take > 0 && cost > budget) break;
      msg.rumors.push_back(hot.rumor);  // shared: no payload copy per target
      budget -= std::min(budget, cost);
      ++hot.pushes;
      ++stats_.payloads_sent;
      stats_.payload_bytes_sent += cost;
    }
    // Rotate so rumors beyond the budget get their turn next round.
    if (take < hot_order_.size()) {
      std::rotate(hot_order_.begin(), hot_order_.begin() + static_cast<std::ptrdiff_t>(take),
                  hot_order_.end());
    }
    if (config_.enable_partial_ae) {
      msg.recent_ids.assign(recent_.begin(), recent_.end());
    }
    out.push_back(Outgoing{target, std::move(msg)});
    return out;
  }

  // Lazy / hybrid dissemination (docs/PROTOCOL.md "Lazy dissemination"):
  // payload bodies travel only while a rumor is young (hybrid: its first
  // eager_fanout payload transmissions) and the target's link can take them;
  // everything else goes as (id, version) digests. Digest entries cost 6
  // modeled bytes, so the whole hot set advances every round — no byte-budget
  // rotation, and an over-budget eager candidate still travels as a digest.
  const PeerRecord* tr = directory_.find(target);
  const bool lazy_link =
      config_.bandwidth_aware && tr != nullptr && tr->link_class == LinkClass::kSlow;
  RumorMsg eager_msg;
  RumorDigestMsg digest;
  std::size_t budget = config_.max_rumor_bytes_per_message;
  for (const RumorId& id : hot_order_) {
    HotRumor& hot = hot_.at(id);
    // Hybrid pushes every young rumor eagerly (fast links only); pure lazy
    // still pushes young *introductions* eagerly on every link — a digest
    // about a peer the target cannot address yet is undeliverable news.
    const bool eager_leg =
        hot.introduce || (config_.rumor_mode == RumorMode::kHybrid && !lazy_link);
    if (eager_leg && hot.pushes < config_.eager_fanout) {
      const std::size_t cost = payload_wire_size(hot.rumor->payload(), kSizes);
      if (eager_msg.rumors.empty() || cost <= budget) {
        eager_msg.rumors.push_back(hot.rumor);
        budget -= std::min(budget, cost);
        ++hot.pushes;
        ++stats_.payloads_sent;
        stats_.payload_bytes_sent += cost;
        continue;
      }
    }
    digest.ids.push_back(id);
  }
  if (config_.enable_partial_ae) {
    // One piggyback per round, attached to whichever message exists first,
    // so an eager+digest pair does not carry the recent-id list twice.
    std::vector<RumorId> recent(recent_.begin(), recent_.end());
    if (!eager_msg.rumors.empty()) {
      eager_msg.recent_ids = std::move(recent);
    } else {
      digest.recent_ids = std::move(recent);
    }
  }
  if (!digest.ids.empty()) {
    ++stats_.digests_sent;
    stats_.digest_ids_sent += digest.ids.size();
  }
  if (!eager_msg.rumors.empty()) out.push_back(Outgoing{target, std::move(eager_msg)});
  if (!digest.ids.empty() || !digest.recent_ids.empty()) {
    out.push_back(Outgoing{target, std::move(digest)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

bool Protocol::adopt_own_version(std::uint64_t seen_version, TimePoint now) {
  // Read-only probe (runs on every summary receipt — must not invalidate the
  // snapshot cache); jump_own_version does the mutation when needed.
  const PeerRecord* self = directory_.find(directory_.self());
  if (self == nullptr || seen_version <= self->version) return false;
  // The community remembers a newer us than we do: we crashed and lost our
  // version counter. Jump past the remembered version and re-rumor, so our
  // fresh record supersedes the stale one everywhere.
  jump_own_version(seen_version);
  (void)now;
  return true;
}

void Protocol::jump_own_version(std::uint64_t past) {
  PeerRecord* self = directory_.find_mutable(directory_.self());
  self->version = past + 1;
  self->online = true;
  make_hot(intern_rumor(payload_from_record(*self, EventKind::kRejoin)));
  reset_interval();
}

bool Protocol::apply_payload(const RumorPayload& p, TimePoint now, PeerId from,
                             std::vector<Outgoing>& out) {
  if (p.origin == directory_.self()) {
    // Our own record is authoritative — unless the community's copy has a
    // higher version than ours (we lost state in a crash): adopt it.
    adopt_own_version(p.version, now);
    return false;
  }
  const PeerRecord* existing = directory_.find(p.origin);
  if (existing != nullptr && p.version <= existing->version) {
    // Stale or already known. One exception: a full-filter payload for the
    // version we hold completes a record whose filter we could not apply
    // earlier (the answer to our "need full filter" pull).
    if (p.version == existing->version && existing->filter_wire.empty() &&
        p.filter.has_value() && p.filter->base_version == 0 && !p.filter->bits.empty()) {
      PeerRecord* mut = directory_.find_mutable(p.origin);
      mut->filter_wire = p.filter->bits;
      mut->key_count = p.filter->key_count;
      if (hooks_.on_apply) hooks_.on_apply(p, now);
    }
    return false;
  }

  PeerRecord record;
  record.id = p.origin;
  record.address = p.address;
  record.link_class = p.link_class;
  record.version = p.version;
  record.key_count = p.key_count;

  bool need_full_pull = false;
  if (p.filter.has_value()) {
    const FilterUpdate& f = *p.filter;
    if (!f.bits.empty() && f.base_version == 0) {
      record.filter_wire = f.bits;  // full filter
    } else if (!f.bits.empty() && existing != nullptr &&
               existing->version == f.base_version && !existing->filter_wire.empty()) {
      // Apply the XOR diff to our stored filter in the Golomb gap domain —
      // O(set bits), no full bit-vector decode, byte-identical to
      // decode -> apply_diff -> re-encode (see bloom::merge_diff_wire).
      try {
        record.filter_wire = bloom::merge_diff_wire(existing->filter_wire, f.bits);
      } catch (const std::exception& e) {
        PLOG_WARN("gossip", "diff apply failed for peer ", p.origin, ": ", e.what());
        need_full_pull = true;
      }
    } else if (!f.bits.empty()) {
      // Diff against a base we do not hold: accept the metadata, pull the
      // full filter from whoever told us.
      need_full_pull = true;
    } else if (existing != nullptr) {
      // Simulation mode (no bits): carry the previous opaque filter forward.
      record.filter_wire = existing->filter_wire;
    }
  } else if (existing != nullptr) {
    record.filter_wire = existing->filter_wire;  // rejoin: filter unchanged
  }

  directory_.apply(record);
  if (hooks_.on_apply) hooks_.on_apply(p, now);
  if (need_full_pull && from != kInvalidPeer) {
    out.push_back(Outgoing{from, PullRequestMsg{{p.id()}}});
  }
  return true;
}

RumorPtr Protocol::pull_rumor_for(const PeerRecord& record) {
  if (auto it = pull_cache_.find(record.id); it != pull_cache_.end()) {
    const RumorPayload& p = it->second->payload();
    // Valid while the record is unchanged: version catches updates, and the
    // key-count/filter-size pair catches the one same-version mutation (a
    // later full filter completing a diff we could not apply).
    if (p.version == record.version && p.key_count == record.key_count && p.filter &&
        p.filter->bits.size() == record.filter_wire.size()) {
      return it->second;
    }
  }
  FilterUpdate full;
  full.base_version = 0;
  full.bits = record.filter_wire;
  full.key_count = record.key_count;
  full.new_keys = record.key_count;
  RumorPtr rumor =
      intern_rumor(payload_from_record(record, EventKind::kFilterChange, std::move(full)));
  pull_cache_.insert_or_assign(record.id, rumor);
  return rumor;
}

std::vector<Protocol::Outgoing> Protocol::on_message(TimePoint now, PeerId from,
                                                     const Message& msg) {
  std::vector<Outgoing> out;
  static const SizeModel kSizes{};  // Table 2 defaults; stats accounting only

  // Hearing from a peer proves it is online.
  directory_.mark_online(from);

  if (const auto* rumor = std::get_if<RumorMsg>(&msg)) {
    RumorAckMsg ack;
    bool any_new = false;
    for (const RumorPtr& p : rumor->rumors.shared()) {
      if (apply_payload(p->payload(), now, from, out)) {
        any_new = true;
        make_hot(p);  // we now spread it too — sharing the sender's encoding
      } else {
        ack.already_knew.push_back(p->id());
        // A payload that superseded nothing was wasted wire — the redundancy
        // lazy dissemination exists to eliminate.
        ++stats_.duplicate_payloads;
        stats_.duplicate_payload_bytes += payload_wire_size(p->payload(), kSizes);
      }
    }
    if (config_.enable_partial_ae) {
      ack.recent_ids.assign(recent_.begin(), recent_.end());
      // Pull anything from the sender's piggyback that we are missing.
      for (const RumorId& id : rumor->recent_ids) {
        const PeerRecord* r = directory_.find(id.origin);
        if (r == nullptr || r->version < id.version) ack.pull_ids.push_back(id);
      }
    }
    out.push_back(Outgoing{from, std::move(ack)});
    // "Whenever x receives a rumor message ... it immediately resets its
    // gossiping interval" — active rumoring implies community change.
    if (!rumor->rumors.empty() || any_new) reset_interval();
    return out;
  }

  if (const auto* ack = std::get_if<RumorAckMsg>(&msg)) {
    std::vector<RumorId> to_retire;
    if (config_.rumor_mode == RumorMode::kEager) {
      // Stop-counter updates for the rumors we pushed: the ones listed were
      // already known at the target; any other hot rumor was news to it.
      std::unordered_set<RumorId, RumorIdHash> knew(ack->already_knew.begin(),
                                                    ack->already_knew.end());
      for (const RumorId& id : hot_order_) {  // stable order, not hash order
        HotRumor& hot = hot_.at(id);
        if (knew.contains(id)) {
          if (++hot.consecutive_known >= config_.stop_count) to_retire.push_back(id);
        } else {
          hot.consecutive_known = 0;
        }
      }
    } else {
      // Hybrid/lazy: a RumorMsg carries only the eager subset of the hot
      // set, so absence from already_knew is no evidence of news — the lazy
      // rumors were never in the message. Count only positive evidence here;
      // resets come from RumorWantMsg want ids, which echo the digest
      // exactly.
      for (const RumorId& id : ack->already_knew) {
        auto it = hot_.find(id);
        if (it != hot_.end() && ++it->second.consecutive_known >= config_.stop_count) {
          to_retire.push_back(id);
        }
      }
    }
    for (const RumorId& id : to_retire) retire_rumor(id);

    // Serve the target's partial-anti-entropy pulls.
    if (!ack->pull_ids.empty()) {
      PullResponseMsg resp;
      for (const RumorId& id : ack->pull_ids) {
        const PeerRecord* r = directory_.find(id.origin);
        if (r != nullptr && r->version >= id.version) resp.rumors.push_back(pull_rumor_for(*r));
      }
      if (!resp.rumors.empty()) out.push_back(Outgoing{from, std::move(resp)});
    }
    // And pull what the target's piggyback showed us we are missing.
    std::vector<RumorId> want;
    for (const RumorId& id : ack->recent_ids) {
      const PeerRecord* r = directory_.find(id.origin);
      if (r == nullptr || r->version < id.version) want.push_back(id);
    }
    if (!want.empty()) out.push_back(Outgoing{from, PullRequestMsg{std::move(want)}});
    return out;
  }

  if (const auto* req = std::get_if<SummaryRequestMsg>(&msg)) {
    SummaryMsg reply;
    reply.entries = directory_.summary_entries();
    if (config_.delta_summaries && req->base_token != 0 &&
        req->base_token == directory_.base_token() && reply.entries.view() != nullptr) {
      // Token match certifies the asker shares our base: only our changed-set
      // needs to travel. `entries` keeps the full shared view (the simulator
      // compares deltas by pointer identity); the wire layer prices and
      // encodes the delta alone.
      reply.base_token = req->base_token;
    }
    if (const auto tomb = directory_.tombstone_version(from); tomb.has_value()) {
      // The asker is a peer we expired — it is clearly back. If it restarted
      // below the tombstoned version, everything it gossips would be refused
      // as stale; tell it the floor it must jump past to be re-admitted.
      reply.rejoin_floor = *tomb;
    }
    out.push_back(Outgoing{from, std::move(reply)});
    return out;
  }

  if (const auto* summary = std::get_if<SummaryMsg>(&msg)) {
    // Decoded delta-only form (live wire): entries/removed are the replier's
    // changed-set against the shared base named by base_token — which we
    // advertised, so a mismatch means our base changed between request and
    // reply. The delta is uninterpretable then; drop it and let the normal
    // retry/cadence paths re-sync.
    const bool delta_form = summary->base_token != 0 && summary->entries.view() == nullptr;
    if (delta_form && summary->base_token != directory_.base_token()) return out;
    if (summary->rejoin_floor > 0) {
      // The replier expired us under T_dead and remembers this version:
      // nothing we gossip at or below it will be accepted. Unlike the
      // entry-based adoption below, equality also forces a jump — the
      // community refuses the floor version itself (tombstones are <=).
      const PeerRecord* self = directory_.find(directory_.self());
      if (self != nullptr && self->version <= summary->rejoin_floor) {
        jump_own_version(summary->rejoin_floor);
      }
    }
    if (const auto own = summary->entries.version_of(directory_.self()); own.has_value()) {
      adopt_own_version(*own, now);
    }
    std::vector<RumorId> missing = delta_form
                                       ? directory_.newer_in_delta(summary->entries.list())
                                       : directory_.newer_in(summary->entries);
    // Never pull our own record: we are its origin (a remote-newer own entry
    // was adopted above instead).
    std::erase_if(missing,
                  [this](const RumorId& id) { return id.origin == directory_.self(); });
    if (config_.max_pull_per_exchange != 0 &&
        missing.size() > config_.max_pull_per_exchange) {
      // Incremental directory acquisition (§7.2 future work): fetch only a
      // chunk now; later anti-entropy rounds pull the rest.
      missing.resize(config_.max_pull_per_exchange);
    }
    if (!summary->push) {  // our pull round-trip completed
      // ...but a peer that knows nobody yet has only learned *of* records,
      // not acquired them. If the pull below is lost there is no normal
      // cadence to recover (no known targets), so stay in catch-up with the
      // replier re-armed as the retry target.
      if (!missing.empty() && directory_.online_count() <= 1) {
        catch_up_pending_ = true;
        pending_pull_ = PendingPull{
            from, round_counter_ + static_cast<std::uint64_t>(config_.ae_retry_rounds), 1};
      } else {
        catch_up_pending_ = false;
        pending_pull_.reset();
      }
    }
    if (!missing.empty()) {
      out.push_back(Outgoing{from, PullRequestMsg{std::move(missing)}});
    } else if (!summary->push &&
               (delta_form
                    ? directory_.same_as_delta(summary->entries.list(), summary->removed)
                    : directory_.same_as(summary->entries))) {
      // Pull-anti-entropy reply showed an identical directory: one more
      // gossip-less contact toward slowing down.
      register_gossipless_contact();
    }
    return out;
  }

  if (const auto* pull = std::get_if<PullRequestMsg>(&msg)) {
    PullResponseMsg resp;
    for (const RumorId& id : pull->ids) {
      const PeerRecord* r = directory_.find(id.origin);
      if (r != nullptr && r->version >= id.version) resp.rumors.push_back(pull_rumor_for(*r));
    }
    if (!resp.rumors.empty()) out.push_back(Outgoing{from, std::move(resp)});
    return out;
  }

  if (const auto* resp = std::get_if<PullResponseMsg>(&msg)) {
    bool any_new = false;
    for (const RumorPtr& p : resp->rumors.shared()) {
      if (apply_payload(p->payload(), now, from, out)) {
        any_new = true;
        make_hot(p);  // pulled news spreads onward like any rumor
      } else {
        ++stats_.duplicate_payloads;
        stats_.duplicate_payload_bytes += payload_wire_size(p->payload(), kSizes);
      }
    }
    if (any_new) reset_interval();  // "finds a new piece of information through anti-entropy"
    return out;
  }

  if (const auto* digest = std::get_if<RumorDigestMsg>(&msg)) {
    // Lazy push: diff the advertised (id, version) pairs against the
    // directory and ask only for bodies that would supersede what we hold.
    // Every digest id is echoed into exactly one reply list, so the sender's
    // per-rumor stop counters advance on precise evidence. Digests never
    // mutate the directory — a lost digest or want leaves both sides
    // unchanged and the summary anti-entropy cadence heals the gap.
    RumorWantMsg reply;
    for (const RumorId& id : digest->ids) {
      if (id.origin == directory_.self()) {
        // Our own record is authoritative — unless the community advertises
        // a newer us (we crashed and lost our version counter): adopt it.
        adopt_own_version(id.version, now);
        reply.already_knew.push_back(id);
        continue;
      }
      if (const auto tomb = directory_.tombstone_version(id.origin);
          tomb.has_value() && id.version <= *tomb) {
        reply.already_knew.push_back(id);  // expired under T_dead: refuse resurrection
        continue;
      }
      const PeerRecord* r = directory_.find(id.origin);
      if (r != nullptr && r->version >= id.version) {
        reply.already_knew.push_back(id);
      } else {
        reply.want.push_back(id);
      }
    }
    if (config_.enable_partial_ae) {
      reply.recent_ids.assign(recent_.begin(), recent_.end());
      // Pull anything from the sender's piggyback that we are missing.
      for (const RumorId& id : digest->recent_ids) {
        const PeerRecord* r = directory_.find(id.origin);
        if (r == nullptr || r->version < id.version) reply.pull_ids.push_back(id);
      }
    }
    // Advertised news implies community change, as a rumor receipt does.
    if (!reply.want.empty()) reset_interval();
    ++stats_.wants_sent;
    stats_.want_ids_sent += reply.want.size();
    out.push_back(Outgoing{from, std::move(reply)});
    return out;
  }

  if (const auto* want = std::get_if<RumorWantMsg>(&msg)) {
    // Reply to our digest: exact per-id evidence for the stop counters.
    std::vector<RumorId> to_retire;
    for (const RumorId& id : want->already_knew) {
      auto it = hot_.find(id);
      if (it != hot_.end() && ++it->second.consecutive_known >= config_.stop_count) {
        to_retire.push_back(id);
      }
    }
    for (const RumorId& id : want->want) {
      auto it = hot_.find(id);
      if (it != hot_.end()) it->second.consecutive_known = 0;
    }
    for (const RumorId& id : to_retire) retire_rumor(id);

    // Serve the wanted bodies verbatim from the interned store: the hot
    // entry itself (the same splice an eager push would have sent, zero
    // re-encoding), or the per-origin pull cache for rumors retired since
    // the digest went out.
    PullResponseMsg resp;
    for (const RumorId& id : want->want) {
      if (auto it = hot_.find(id); it != hot_.end()) {
        resp.rumors.push_back(it->second.rumor);
        ++stats_.wants_served;
        continue;
      }
      const PeerRecord* r = directory_.find(id.origin);
      if (r != nullptr && r->version >= id.version) {
        resp.rumors.push_back(pull_rumor_for(*r));
        ++stats_.wants_served;
      }
    }
    // Partial-anti-entropy legs, mirroring the RumorAck path: serve the
    // target's piggyback pulls and fetch what its piggyback showed us.
    for (const RumorId& id : want->pull_ids) {
      const PeerRecord* r = directory_.find(id.origin);
      if (r != nullptr && r->version >= id.version) resp.rumors.push_back(pull_rumor_for(*r));
    }
    if (!resp.rumors.empty()) out.push_back(Outgoing{from, std::move(resp)});
    std::vector<RumorId> missing;
    for (const RumorId& id : want->recent_ids) {
      const PeerRecord* r = directory_.find(id.origin);
      if (r == nullptr || r->version < id.version) missing.push_back(id);
    }
    if (!missing.empty()) out.push_back(Outgoing{from, PullRequestMsg{std::move(missing)}});
    return out;
  }

  return out;
}

void Protocol::on_send_failed(PeerId to, TimePoint now) {
  directory_.mark_offline(to, now);
  if (pending_pull_ && pending_pull_->target == to) {
    // The pull target is unreachable — no reply will ever come. Allow an
    // immediate retry at the next round; the attempt still counts toward
    // the catch-up bound.
    pending_pull_->retry_round = round_counter_;
  }
}

}  // namespace planetp::gossip
