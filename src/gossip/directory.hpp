#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gossip/types.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

/// \file directory.hpp
/// A peer's local copy of the replicated global directory (§3). Holds one
/// PeerRecord per known member, applies versioned updates, tracks local
/// online/offline beliefs, and expires members marked offline continuously
/// for T_dead.

namespace planetp::gossip {

class Directory {
 public:
  explicit Directory(PeerId self) : self_(self) {}

  PeerId self() const { return self_; }

  /// Insert or replace this peer's own record.
  void put_self(PeerRecord record);

  /// Apply a remote update. Returns true if it superseded local knowledge
  /// (version strictly newer or peer unknown). An applied update also sets
  /// the peer back online (§3: a rejoin rumor flips off-line beliefs).
  bool apply(const PeerRecord& record);

  /// Record lookup (nullptr when unknown).
  const PeerRecord* find(PeerId id) const;
  PeerRecord* find_mutable(PeerId id);

  /// Local belief updates from communication outcomes; not gossiped.
  void mark_offline(PeerId id, TimePoint now);
  void mark_online(PeerId id);

  /// Consecutive query failures before a SUSPECT peer is marked offline.
  static constexpr std::uint32_t kSuspectThreshold = 3;

  /// Record a query-time failure against \p id (timeout or garbage reply,
  /// not gossiped). Each failure raises the peer's SUSPECT level, demoting
  /// it in rank_peers; at kSuspectThreshold the peer is marked offline so
  /// subsequent gossip rounds and queries skip it until it proves itself
  /// again (offline probe or a newer gossiped version). Returns the new
  /// suspicion level (0 when the peer is unknown).
  std::uint32_t record_query_failure(PeerId id, TimePoint now);

  /// A successful query contact clears any SUSPECT state on \p id.
  void record_query_success(PeerId id);

  /// Current SUSPECT level of \p id (0 when unknown or trusted).
  std::uint32_t suspicion(PeerId id) const;

  /// Drop every record that has been continuously offline for at least
  /// \p t_dead, assuming permanent departure. Returns the dropped ids.
  /// Each drop leaves a local tombstone: anti-entropy with peers that have
  /// not expired the record yet would otherwise resurrect it (it looks
  /// brand-new to us), flip it back online, and keep a departed peer's
  /// record bouncing around the community forever. Only a strictly newer
  /// version — an actual rejoin — clears the tombstone.
  std::vector<PeerId> expire_dead(TimePoint now, Duration t_dead);

  /// Version at which \p id was expired, if we hold a tombstone for it.
  std::optional<std::uint64_t> tombstone_version(PeerId id) const;

  /// Random peer believed online, excluding self; kInvalidPeer if none.
  PeerId random_online(Rng& rng) const;

  /// Random online peer of the given class, excluding self.
  PeerId random_online_of_class(Rng& rng, LinkClass cls) const;

  /// Random peer currently believed offline, excluding self; kInvalidPeer if
  /// none. Used to probe for peers that became reachable again (e.g. after a
  /// partition healed) without anyone rumoring about it.
  PeerId random_offline(Rng& rng) const;

  /// Directory summary for anti-entropy exchanges.
  std::vector<PeerSummary> summary() const;

  /// Versions that \p remote has but we lack or hold older (what to pull).
  std::vector<RumorId> newer_in(const std::vector<PeerSummary>& remote) const;

  /// True when \p remote and our summary match exactly (same peers, same
  /// versions) — the "same directory" test of the adaptive interval (§3).
  bool same_as(const std::vector<PeerSummary>& remote) const;

  std::size_t size() const { return records_.size(); }
  std::size_t online_count() const;

  void for_each(const std::function<void(const PeerRecord&)>& fn) const;

 private:
  PeerId self_;
  std::unordered_map<PeerId, PeerRecord> records_;
  std::unordered_map<PeerId, std::uint64_t> tombstones_;  ///< expired id -> version
  // Flat id list kept in sync for O(1) random selection.
  std::vector<PeerId> ids_;

  void add_id(PeerId id);
  void remove_id(PeerId id);
};

}  // namespace planetp::gossip
