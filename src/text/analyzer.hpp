#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/tokenizer.hpp"

/// \file analyzer.hpp
/// The full indexing pipeline of §7.3: tokenize -> stop-word removal ->
/// Porter stemming. Both documents and queries pass through the same
/// analyzer so their term spaces agree.

namespace planetp::text {

struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions opts = {}) : opts_(opts) {}

  /// Analyze \p input into the processed term sequence (duplicates kept, in
  /// document order — term frequency is derived by the index).
  std::vector<std::string> analyze(std::string_view input) const;

  /// Analyze and aggregate into term -> frequency.
  std::unordered_map<std::string, std::uint32_t> term_frequencies(std::string_view input) const;

  /// Process a single raw token; returns empty string if it is dropped.
  std::string process_token(std::string_view token) const;

  const AnalyzerOptions& options() const { return opts_; }

 private:
  AnalyzerOptions opts_;
};

}  // namespace planetp::text
