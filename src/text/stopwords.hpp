#pragma once

#include <string_view>

/// \file stopwords.hpp
/// Classic English stop-word list (the Smart system's common subset). The
/// paper's pre-processing "tries to eliminate frequently used words like
/// the, of, etc." before indexing and querying.

namespace planetp::text {

/// True if \p word (already lower-cased) is a stop word.
bool is_stopword(std::string_view word);

/// Number of entries in the built-in list (for tests / docs).
std::size_t stopword_count();

}  // namespace planetp::text
