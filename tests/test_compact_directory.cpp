#include "search/compact_directory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace planetp::search {
namespace {

bloom::BloomParams small_params() { return bloom::BloomParams{65536, 2}; }

/// Build n peers, each holding the terms "p<i>_t<j>" for j in [0, per_peer).
std::vector<bloom::BloomFilter> make_filters(std::size_t n, std::size_t per_peer) {
  std::vector<bloom::BloomFilter> filters;
  for (std::size_t i = 0; i < n; ++i) {
    bloom::BloomFilter f(small_params());
    for (std::size_t j = 0; j < per_peer; ++j) {
      f.insert("p" + std::to_string(i) + "_t" + std::to_string(j));
    }
    filters.push_back(std::move(f));
  }
  return filters;
}

TEST(CompactDirectory, GroupSizeOneIsExact) {
  const auto filters = make_filters(10, 20);
  CompactDirectory dir(1);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    dir.add_peer(static_cast<std::uint32_t>(i), filters[i]);
  }
  EXPECT_EQ(dir.group_count(), 10u);
  const auto c = dir.candidates({"p3_t0"});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 3u);
}

TEST(CompactDirectory, NeverMissesTrueOwner) {
  const auto filters = make_filters(20, 50);
  for (std::size_t g : {2u, 4u, 8u}) {
    CompactDirectory dir(g);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      dir.add_peer(static_cast<std::uint32_t>(i), filters[i]);
    }
    for (std::size_t i = 0; i < filters.size(); ++i) {
      const auto c = dir.candidates({"p" + std::to_string(i) + "_t1"});
      EXPECT_NE(std::find(c.begin(), c.end(), i), c.end()) << "g=" << g << " peer " << i;
    }
  }
}

TEST(CompactDirectory, CandidatesAreWholeGroups) {
  const auto filters = make_filters(8, 10);
  CompactDirectory dir(4);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    dir.add_peer(static_cast<std::uint32_t>(i), filters[i]);
  }
  EXPECT_EQ(dir.group_count(), 2u);
  // A hit on peer 1's terms implicates its whole group {0,1,2,3}.
  const auto c = dir.candidates({"p1_t0"});
  EXPECT_EQ(std::set<std::uint32_t>(c.begin(), c.end()),
            (std::set<std::uint32_t>{0, 1, 2, 3}));
}

TEST(CompactDirectory, MemoryShrinksWithGroupSize) {
  const auto filters = make_filters(16, 10);
  CompactDirectory fine(1), coarse(8);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    fine.add_peer(static_cast<std::uint32_t>(i), filters[i]);
    coarse.add_peer(static_cast<std::uint32_t>(i), filters[i]);
  }
  EXPECT_GT(fine.memory_bytes(), 4 * coarse.memory_bytes());
}

class CompactTradeoff : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompactTradeoff, MoreCompactionMoreCandidates) {
  // The §2 trade-off: as group size grows, storage falls and the candidate
  // set (peers to contact) can only grow.
  const std::size_t g = GetParam();
  const auto filters = make_filters(32, 40);
  CompactDirectory exact(1), compact(g);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    exact.add_peer(static_cast<std::uint32_t>(i), filters[i]);
    compact.add_peer(static_cast<std::uint32_t>(i), filters[i]);
  }
  const std::vector<std::string> query = {"p7_t3"};
  const auto exact_c = exact.candidates(query);
  const auto compact_c = compact.candidates(query);
  EXPECT_GE(compact_c.size(), exact_c.size());
  EXPECT_LE(compact.memory_bytes(), exact.memory_bytes());
  // Superset property.
  for (auto peer : exact_c) {
    EXPECT_NE(std::find(compact_c.begin(), compact_c.end(), peer), compact_c.end());
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CompactTradeoff, ::testing::Values(1, 2, 4, 8, 16));

TEST(CompactDirectory, CandidatesAnyIsUnion) {
  const auto filters = make_filters(6, 5);
  CompactDirectory dir(1);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    dir.add_peer(static_cast<std::uint32_t>(i), filters[i]);
  }
  const auto any = dir.candidates_any({"p0_t0", "p5_t0"});
  EXPECT_EQ(std::set<std::uint32_t>(any.begin(), any.end()),
            (std::set<std::uint32_t>{0, 5}));
  // Conjunctive candidates for terms on different peers: none.
  EXPECT_TRUE(dir.candidates({"p0_t0", "p5_t0"}).empty());
}

TEST(CompactDirectory, GeometryMismatchThrows) {
  CompactDirectory dir(4);
  dir.add_peer(0, bloom::BloomFilter(small_params()));
  EXPECT_THROW(dir.add_peer(1, bloom::BloomFilter(bloom::BloomParams{1024, 2})),
               std::invalid_argument);
}

TEST(CompactDirectory, ZeroGroupSizeBecomesOne) {
  CompactDirectory dir(0);
  EXPECT_EQ(dir.group_size(), 1u);
}

}  // namespace
}  // namespace planetp::search
