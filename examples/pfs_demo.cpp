/// \file pfs_demo.cpp
/// PFS (§6): a personal semantic file system on PlanetP. Files published by
/// any community member appear in query-named directories; subdirectories
/// refine the query; removals are picked up on refresh.

#include <cstdio>

#include "pfs/pfs.hpp"

using namespace planetp;
using namespace planetp::core;
using namespace planetp::pfs;

namespace {
void list_dir(Pfs& pfs, const std::string& path) {
  std::printf("%s\n", path.c_str());
  for (const DirEntry& e : pfs.open(path)) {
    std::printf("  %-28s -> %s\n", e.title.c_str(), e.url.c_str());
  }
}
}  // namespace

int main() {
  Community community;
  Node& alice_node = community.create_node();
  Node& bob_node = community.create_node();

  // Zero staleness threshold so every open() re-runs the query in this
  // single-shot demo (a long-lived deployment would use minutes).
  Pfs alice(alice_node, /*stale_threshold=*/0);
  Pfs bob(bob_node, /*stale_threshold=*/0);

  // Alice shares her reading list.
  alice.publish_file("papers/demers87.txt",
                     "epidemic algorithms for replicated database maintenance "
                     "anti entropy rumor mongering");
  alice.publish_file("papers/bloom70.txt",
                     "space time tradeoffs in hash coding bloom filters");
  alice.publish_file("notes/todo.txt", "buy milk and fix the fence");

  // Bob shares one too.
  bob.publish_file("stoica01.txt",
                   "chord a scalable peer to peer lookup service distributed hash");

  // Bob builds a semantic namespace: directories are queries.
  const std::string papers = bob.create_directory("hash");
  list_dir(bob, papers);

  const std::string refined = bob.create_subdirectory(papers, "bloom");
  std::puts("-- refined (hash AND bloom):");
  list_dir(bob, refined);

  // New publications appear via persistent-query upcalls.
  alice.publish_file("papers/karger97.txt",
                     "consistent hashing and random trees distributed caching");
  std::puts("-- after alice publishes karger97:");
  list_dir(bob, papers);

  // Removals disappear on refresh.
  alice.unpublish_file("papers/bloom70.txt");
  std::puts("-- after alice removes bloom70:");
  list_dir(bob, refined);
  return 0;
}
