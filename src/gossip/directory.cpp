#include "gossip/directory.hpp"

#include <algorithm>

namespace planetp::gossip {

void Directory::adopt_base(DirectoryBasePtr base) {
  base_ = std::move(base);
  records_.clear();
  tombstones_.clear();
  ids_.clear();
  extra_ids_.clear();
  offline_count_ = 0;
  size_ = base_->records.size();
  cached_summary_.reset();
  cached_delta_.reset();
  cached_view_.reset();
  bump_epoch();
}

void Directory::put_self(PeerRecord record) {
  const PeerId id = record.id;
  record.online = true;  // we are definitionally online
  auto it = records_.find(id);
  if (it == records_.end()) {
    // In based mode the id may already be visible through the base; only a
    // genuinely new id grows the live set.
    const bool was_visible = base_ != nullptr && !expired(id) && find_in_base(id) != nullptr;
    records_.emplace(id, std::move(record));
    if (!was_visible) {
      add_id(id);
      if (base_ != nullptr) ++size_;
    }
  } else {
    if (!it->second.online) --offline_count_;
    it->second = std::move(record);
  }
  bump_epoch();
}

bool Directory::apply(const PeerRecord& record) {
  bool resurrected = false;
  if (auto t = tombstones_.find(record.id); t != tombstones_.end()) {
    if (record.version <= t->second) return false;  // expired stays expired
    tombstones_.erase(t);  // a genuinely newer version is a real rejoin
    resurrected = true;
  }
  const PeerRecord* existing = find(record.id);
  if (existing == nullptr) {
    if (!record.online) ++offline_count_;
    records_.emplace(record.id, record);
    add_id(record.id);
    if (base_ != nullptr) ++size_;
    bump_epoch();
    return true;
  }
  if (record.version <= existing->version) {
    return false;
  }
  // Preserve nothing local: a newer version means fresh presence knowledge,
  // so the peer is believed online again.
  if (!existing->online) --offline_count_;
  PeerRecord updated = record;
  updated.online = true;
  updated.offline_since = 0;
  updated.suspicion = 0;  // fresh presence knowledge resets local suspicion
  records_[record.id] = std::move(updated);
  // A resurrected base record re-enters the live set (the tombstone above
  // made find() skip it; its overlay copy now shadows the base again).
  if (resurrected && base_ != nullptr) ++size_;
  bump_epoch();
  return true;
}

const PeerRecord* Directory::find(PeerId id) const {
  auto it = records_.find(id);
  if (it != records_.end()) return &it->second;
  if (base_ == nullptr || expired(id)) return nullptr;
  return find_in_base(id);
}

const PeerRecord* Directory::find_in_base(PeerId id) const {
  const std::vector<PeerRecord>& recs = base_->records;
  auto it = std::lower_bound(recs.begin(), recs.end(), id,
                             [](const PeerRecord& r, PeerId want) { return r.id < want; });
  return it != recs.end() && it->id == id ? &*it : nullptr;
}

PeerRecord* Directory::find_mutable(PeerId id) {
  // Callers hold a mutable record to bump its version (local filter changes,
  // rejoin jumps) or complete its filter — assume the summary may change.
  bump_epoch();
  return lookup(id);
}

PeerRecord* Directory::lookup(PeerId id) {
  auto it = records_.find(id);
  if (it != records_.end()) return &it->second;
  if (base_ == nullptr || expired(id)) return nullptr;
  const PeerRecord* b = find_in_base(id);
  if (b == nullptr) return nullptr;
  // Materialize the shared record into the private overlay so the caller can
  // mutate it without touching the base. A pure belief update (offline,
  // suspicion) keeps version == base version and therefore stays invisible
  // in the epoch delta — exactly like the belief/summary split in classic
  // mode, where beliefs do not bump the epoch.
  auto [nit, inserted] = records_.emplace(id, *b);
  (void)inserted;
  return &nit->second;
}

void Directory::mark_offline(PeerId id, TimePoint now) {
  if (PeerRecord* r = lookup(id); r != nullptr && r->online) {
    r->online = false;
    r->offline_since = now;
    ++offline_count_;
  }
}

void Directory::mark_online(PeerId id) {
  // Avoid materializing a base record just to confirm what it already says.
  if (const PeerRecord* c = find(id); c == nullptr || (c->online && c->suspicion == 0)) return;
  if (PeerRecord* r = lookup(id); r != nullptr) {
    if (!r->online) --offline_count_;
    r->online = true;
    r->offline_since = 0;
    r->suspicion = 0;
  }
}

std::uint32_t Directory::record_query_failure(PeerId id, TimePoint now) {
  PeerRecord* r = lookup(id);
  if (r == nullptr || id == self_) return 0;
  ++r->suspicion;
  if (r->suspicion >= kSuspectThreshold) mark_offline(id, now);
  return r->suspicion;
}

void Directory::record_query_success(PeerId id) {
  if (const PeerRecord* c = find(id); c == nullptr || c->suspicion == 0) return;
  if (PeerRecord* r = lookup(id); r != nullptr) r->suspicion = 0;
}

std::uint32_t Directory::suspicion(PeerId id) const {
  const PeerRecord* r = find(id);
  return r == nullptr ? 0 : r->suspicion;
}

std::vector<PeerId> Directory::expire_dead(TimePoint now, Duration t_dead) {
  std::vector<PeerId> dropped;
  // Every round calls this; with nobody believed offline (the common steady
  // state) there is nothing to scan.
  if (offline_count_ == 0) return dropped;
  for (auto it = records_.begin(); it != records_.end();) {
    const PeerRecord& r = it->second;
    if (!r.online && r.id != self_ && now - r.offline_since >= t_dead) {
      dropped.push_back(r.id);
      tombstones_[r.id] = r.version;
      remove_id(r.id);
      --offline_count_;
      if (base_ != nullptr) --size_;
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  if (!dropped.empty()) bump_epoch();
  return dropped;
}

std::size_t Directory::id_universe() const {
  return base_ == nullptr ? ids_.size() : base_->records.size() + extra_ids_.size();
}

PeerId Directory::id_at(std::size_t i) const {
  if (base_ == nullptr) return ids_[i];
  return i < base_->records.size() ? base_->records[i].id
                                   : extra_ids_[i - base_->records.size()];
}

PeerId Directory::random_online(Rng& rng) const {
  const std::size_t n = id_universe();
  if (n == 0) return kInvalidPeer;
  // Rejection sampling over the flat (or virtual base+extras) id list;
  // bounded attempts keep worst-case cost predictable even when most of the
  // community is offline.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const PeerId id = id_at(rng.below(n));
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online) return id;
  }
  // Fall back to a linear scan so "some online peer exists" always succeeds.
  std::vector<PeerId> online;
  for (std::size_t i = 0; i < n; ++i) {
    const PeerId id = id_at(i);
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online) online.push_back(id);
  }
  if (online.empty()) return kInvalidPeer;
  return online[rng.below(online.size())];
}

PeerId Directory::random_online_of_class(Rng& rng, LinkClass cls) const {
  const std::size_t n = id_universe();
  if (n == 0) return kInvalidPeer;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const PeerId id = id_at(rng.below(n));
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online && r->link_class == cls) return id;
  }
  std::vector<PeerId> online;
  for (std::size_t i = 0; i < n; ++i) {
    const PeerId id = id_at(i);
    if (id == self_) continue;
    const PeerRecord* r = find(id);
    if (r != nullptr && r->online && r->link_class == cls) online.push_back(id);
  }
  if (online.empty()) return kInvalidPeer;
  return online[rng.below(online.size())];
}

PeerId Directory::random_offline(Rng& rng) const {
  if (offline_count_ == 0) return kInvalidPeer;  // skip the scan, common case
  std::vector<PeerId> offline;
  // Offline records are always materialized in the overlay (mark_offline
  // goes through lookup), so based mode scans O(overlay), not O(peers).
  if (base_ != nullptr) {
    for (const auto& [id, r] : records_) {
      if (id != self_ && !r.online) offline.push_back(id);
    }
    std::sort(offline.begin(), offline.end());  // map order is not deterministic
  } else {
    for (PeerId id : ids_) {
      if (id == self_) continue;
      const PeerRecord* r = find(id);
      if (r != nullptr && !r->online) offline.push_back(id);
    }
  }
  if (offline.empty()) return kInvalidPeer;
  return offline[rng.below(offline.size())];
}

SummarySnapshot Directory::summary() const {
  if (summary_caching_ && cached_summary_ != nullptr && cached_epoch_ == epoch_) {
    return cached_summary_;
  }
  auto out = std::make_shared<std::vector<PeerSummary>>();
  if (base_ != nullptr) {
    // Full materialized summary (tests, exchanges with peers on another
    // base). The shared-base fast paths never come here in steady state.
    const SummaryView view(base_->summary, delta(), size_);
    *out = view.flat_list();
  } else {
    out->reserve(records_.size());
    for (const auto& [id, r] : records_) out->push_back(PeerSummary{id, r.version});
    std::sort(out->begin(), out->end(),
              [](const PeerSummary& a, const PeerSummary& b) { return a.id < b.id; });
  }
  ++summary_builds_;
  cached_summary_ = std::move(out);
  cached_epoch_ = epoch_;
  return cached_summary_;
}

std::shared_ptr<const SummaryDelta> Directory::delta() const {
  if (summary_caching_ && cached_delta_ != nullptr && cached_delta_epoch_ == epoch_) {
    return cached_delta_;
  }
  auto d = std::make_shared<SummaryDelta>();
  d->entries.reserve(records_.size());
  for (const auto& [id, r] : records_) {
    // Overlay records that only hold local beliefs (offline, suspicion)
    // carry the base version and are excluded: they are invisible in
    // summaries, exactly like belief updates in classic mode.
    const PeerRecord* b = find_in_base(id);
    if (b == nullptr || b->version != r.version) d->entries.push_back(PeerSummary{id, r.version});
  }
  std::sort(d->entries.begin(), d->entries.end(),
            [](const PeerSummary& a, const PeerSummary& b) { return a.id < b.id; });
  for (const auto& [id, version] : tombstones_) {
    (void)version;
    if (find_in_base(id) != nullptr) d->removed.push_back(id);
  }
  std::sort(d->removed.begin(), d->removed.end());
  cached_delta_ = std::move(d);
  cached_delta_epoch_ = epoch_;
  return cached_delta_;
}

SummaryEntries Directory::summary_entries() const {
  if (base_ == nullptr) return SummaryEntries(summary());
  if (summary_caching_ && cached_view_ != nullptr && cached_view_epoch_ == epoch_) {
    return SummaryEntries(cached_view_);
  }
  cached_view_ = std::make_shared<SummaryView>(base_->summary, delta(), size_);
  cached_view_epoch_ = epoch_;
  return SummaryEntries(cached_view_);
}

void Directory::set_summary_caching(bool enabled) {
  summary_caching_ = enabled;
  if (!enabled) cached_summary_.reset();
}

namespace {
/// Strictly increasing by id — what a snapshot-built summary always is.
/// Anything else (hand-built or hostile input) takes the probe fallback.
bool sorted_unique_by_id(const std::vector<PeerSummary>& v) {
  return std::adjacent_find(v.begin(), v.end(), [](const PeerSummary& a, const PeerSummary& b) {
           return a.id >= b.id;
         }) == v.end();
}
}  // namespace

std::vector<RumorId> Directory::newer_in(const std::vector<PeerSummary>& remote) const {
  // With caching disabled we also fall back to probing — together with the
  // per-call summary rebuild this reproduces the pre-cache cost model that
  // bench/gossip_throughput measures against.
  if (!summary_caching_ || !sorted_unique_by_id(remote)) return newer_in_probe(remote);
  const std::vector<PeerSummary>& local = *summary();
  std::vector<RumorId> out;
  std::size_t i = 0;
  // Merge-scan: both sides sorted by id, so each remote entry resolves
  // against the local record in O(1) amortized instead of a hash probe.
  // Tombstones stay a probe — expired peers are rare and scattered.
  const auto want = [&](const PeerSummary& s) {
    if (auto t = tombstones_.find(s.id); t != tombstones_.end() && s.version <= t->second) {
      return;  // we expired this record; don't pull it back
    }
    out.push_back(RumorId{s.id, s.version});
  };
  for (const PeerSummary& s : remote) {
    while (i < local.size() && local[i].id < s.id) ++i;
    if (i >= local.size() || local[i].id != s.id) {
      want(s);  // unknown peer
    } else if (local[i].version < s.version) {
      want(s);  // remote holds a newer version
    }
  }
  return out;
}

std::vector<RumorId> Directory::newer_in_probe(const std::vector<PeerSummary>& remote) const {
  std::vector<RumorId> out;
  for (const PeerSummary& s : remote) {
    if (auto t = tombstones_.find(s.id); t != tombstones_.end() && s.version <= t->second) {
      continue;  // we expired this record; don't pull it back
    }
    const PeerRecord* r = find(s.id);
    if (r == nullptr || r->version < s.version) {
      out.push_back(RumorId{s.id, s.version});
    }
  }
  return out;
}

std::optional<std::uint64_t> Directory::tombstone_version(PeerId id) const {
  auto it = tombstones_.find(id);
  if (it == tombstones_.end()) return std::nullopt;
  return it->second;
}

bool Directory::same_as(const std::vector<PeerSummary>& remote) const {
  if (!summary_caching_ || !sorted_unique_by_id(remote)) return same_as_probe(remote);
  const std::vector<PeerSummary>& local = *summary();
  return local.size() == remote.size() && std::equal(local.begin(), local.end(), remote.begin());
}

bool Directory::same_as_probe(const std::vector<PeerSummary>& remote) const {
  if (remote.size() != size()) return false;
  for (const PeerSummary& s : remote) {
    const PeerRecord* r = find(s.id);
    if (r == nullptr || r->version != s.version) return false;
  }
  return true;
}

std::vector<RumorId> Directory::newer_in(const SummaryEntries& remote) const {
  const std::shared_ptr<const SummaryView>& view = remote.view();
  if (base_ != nullptr && summary_caching_ && view != nullptr && view->base == base_->summary) {
    // Shared base: any remote entry outside its delta carries the base
    // version, which can never be newer than ours (local versions only move
    // forward from the base; removals leave tombstones that refuse stale
    // versions). Scanning the remote delta alone is therefore exact —
    // O(changed records), not O(peers).
    return newer_in_delta(view->delta->entries);
  }
  merge_scan_entries_ += remote.size();
  return newer_in(remote.list());
}

std::vector<RumorId> Directory::newer_in_delta(const std::vector<PeerSummary>& entries) const {
  merge_scan_entries_ += entries.size();
  std::vector<RumorId> out;
  for (const PeerSummary& s : entries) {
    if (auto t = tombstones_.find(s.id); t != tombstones_.end() && s.version <= t->second) {
      continue;  // we expired this record; don't pull it back
    }
    const PeerRecord* r = find(s.id);
    if (r == nullptr || r->version < s.version) out.push_back(RumorId{s.id, s.version});
  }
  return out;
}

bool Directory::same_as(const SummaryEntries& remote) const {
  const std::shared_ptr<const SummaryView>& view = remote.view();
  if (base_ != nullptr && summary_caching_ && view != nullptr && view->base == base_->summary) {
    // Identical bases: the merged summaries are equal iff the changed-sets
    // are. Deltas exclude belief-only overlay entries (version == base), so
    // equal merged lists always compare equal here and vice versa.
    return same_as_delta(view->delta->entries, view->delta->removed);
  }
  merge_scan_entries_ += remote.size();
  return same_as(remote.list());
}

bool Directory::same_as_delta(const std::vector<PeerSummary>& entries,
                              const std::vector<PeerId>& removed) const {
  const SummaryDelta& ld = *delta();
  merge_scan_entries_ += ld.entries.size() + entries.size();
  return ld.entries == entries && ld.removed == removed;
}

std::size_t Directory::online_count() const { return size() - offline_count_; }

void Directory::for_each(const std::function<void(const PeerRecord&)>& fn) const {
  if (base_ == nullptr) {
    for (const auto& [id, r] : records_) fn(r);
    return;
  }
  for (const PeerRecord& b : base_->records) {
    if (auto it = records_.find(b.id); it != records_.end()) {
      fn(it->second);  // overlay shadows the base
    } else if (!expired(b.id)) {
      fn(b);
    }
  }
  for (PeerId id : extra_ids_) {
    if (auto it = records_.find(id); it != records_.end()) fn(it->second);
  }
}

void Directory::add_id(PeerId id) {
  if (base_ == nullptr) {
    ids_.push_back(id);
  } else if (find_in_base(id) == nullptr) {
    extra_ids_.push_back(id);  // base ids are already in the virtual index
  }
}

void Directory::remove_id(PeerId id) {
  std::vector<PeerId>& vec = base_ == nullptr ? ids_ : extra_ids_;
  auto it = std::find(vec.begin(), vec.end(), id);
  if (it != vec.end()) {
    *it = vec.back();
    vec.pop_back();
  }
}

}  // namespace planetp::gossip
