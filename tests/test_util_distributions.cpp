#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace planetp {
namespace {

TEST(Zipf, SamplesStayInRange) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t k = zipf.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 1000u);
  }
}

TEST(Zipf, LowRanksDominate) {
  ZipfSampler zipf(10000, 1.1);
  Rng rng(2);
  std::size_t rank1 = 0, rank100plus = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const std::size_t k = zipf.sample(rng);
    if (k == 1) ++rank1;
    if (k > 100) ++rank100plus;
  }
  EXPECT_GT(rank1, static_cast<std::size_t>(n / 50));  // rank 1 is common
  EXPECT_GT(rank100plus, 0u);                          // but the tail is reachable
}

TEST(Zipf, FrequencyRatioApproximatesPowerLaw) {
  // P(1)/P(2) should be about 2^s for Zipf(s).
  const double s = 1.0;
  ZipfSampler zipf(1000, s);
  Rng rng(3);
  std::size_t c1 = 0, c2 = 0;
  for (int i = 0; i < 400000; ++i) {
    const std::size_t k = zipf.sample(rng);
    if (k == 1) ++c1;
    if (k == 2) ++c2;
  }
  const double ratio = static_cast<double>(c1) / static_cast<double>(c2);
  EXPECT_NEAR(ratio, std::pow(2.0, s), 0.3);
}

TEST(Zipf, InvalidParamsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(Zipf, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(Exponential, MeanMatches) {
  ExponentialSampler exp_sampler(5.0);
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += exp_sampler.sample(rng);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Exponential, IntervalMeanMatches) {
  Rng rng(6);
  const Duration mean = 90 * kSecond;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(ExponentialSampler::interval(rng, mean));
  }
  EXPECT_NEAR(sum / n / static_cast<double>(kSecond), 90.0, 3.0);
}

TEST(Weibull, ShapeOneIsExponential) {
  WeibullSampler w(1.0, 2.0);
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += w.sample(rng);
  EXPECT_NEAR(sum / n, 2.0, 0.1);  // mean of Exp(scale=2) is 2
}

TEST(Weibull, HeavyTailForSmallShape) {
  // shape < 1 gives a heavier tail: the max sample should far exceed the
  // mean over many draws.
  WeibullSampler w(0.5, 1.0);
  Rng rng(8);
  double sum = 0, maxv = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = w.sample(rng);
    sum += x;
    maxv = std::max(maxv, x);
  }
  EXPECT_GT(maxv, 10.0 * sum / n);
}

TEST(Poisson, SmallLambdaMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(poisson_sample(rng, 3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Poisson, LargeLambdaMean) {
  Rng rng(10);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(poisson_sample(rng, 180.0));
  EXPECT_NEAR(sum / n, 180.0, 2.0);
}

TEST(Poisson, ZeroLambda) {
  Rng rng(11);
  EXPECT_EQ(poisson_sample(rng, 0.0), 0u);
  EXPECT_EQ(poisson_sample(rng, -1.0), 0u);
}

TEST(WeibullPartition, SumsToTotal) {
  Rng rng(12);
  for (std::size_t total : {0u, 1u, 100u, 12345u}) {
    const auto counts = weibull_partition(rng, total, 37, 0.7, 1.0);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}), total);
    EXPECT_EQ(counts.size(), 37u);
  }
}

TEST(WeibullPartition, MinPerBinRespected) {
  Rng rng(13);
  const auto counts = weibull_partition(rng, 1000, 50, 0.7, 1.0, 1);
  for (std::size_t c : counts) EXPECT_GE(c, 1u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::size_t{0}), 1000u);
}

TEST(WeibullPartition, SkewedDistribution) {
  // Low shape should concentrate mass: the max bin should hold far more
  // than the average.
  Rng rng(14);
  const auto counts = weibull_partition(rng, 100000, 100, 0.5, 1.0);
  const std::size_t maxc = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(maxc, 3000u);  // >3x the uniform share of 1000
}

TEST(WeibullPartition, ZeroBins) {
  Rng rng(15);
  EXPECT_TRUE(weibull_partition(rng, 100, 0, 0.7, 1.0).empty());
}

}  // namespace
}  // namespace planetp
