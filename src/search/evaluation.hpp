#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "search/ranker.hpp"

/// \file evaluation.hpp
/// Retrieval-quality metrics of §7.3: recall (eq. 5), precision (eq. 6), and
/// the "Best" oracle of Fig 6c — the minimum number of peers that must be
/// contacted to retrieve k relevant documents given the judgments.

namespace planetp::search {

using RelevantSet = std::unordered_set<index::DocumentId, index::DocumentIdHash>;

/// R(Q) = |presented ∩ relevant| / |relevant|. Returns 1 when there are no
/// relevant documents (nothing to miss).
double recall(const std::vector<ScoredDoc>& presented, const RelevantSet& relevant);

/// P(Q) = |presented ∩ relevant| / |presented|. Returns 1 for an empty
/// result list (nothing irrelevant shown).
double precision(const std::vector<ScoredDoc>& presented, const RelevantSet& relevant);

/// Greedy minimum-peer cover: the fewest peers whose document holdings
/// contain min(k, |relevant|) relevant documents. \p owner_of maps a
/// document to the peer storing it. Greedy set cover is the standard
/// approximation (exact cover is NP-hard); for Fig 6c's Best curve it is
/// indistinguishable in practice.
std::size_t best_peers_for_k(
    const RelevantSet& relevant, std::size_t k,
    const std::unordered_map<index::DocumentId, std::uint32_t, index::DocumentIdHash>&
        owner_of);

}  // namespace planetp::search
