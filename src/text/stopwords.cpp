#include "text/stopwords.hpp"

#include <algorithm>
#include <array>

namespace planetp::text {

namespace {

constexpr std::array<std::string_view, 174> kStopwordsRaw = {
    "a",          "about",      "above",     "after",     "again",     "against",
    "all",        "am",         "an",        "and",       "any",       "are",
    "aren't",     "as",         "at",        "be",        "because",   "been",
    "before",     "being",      "below",     "between",   "both",      "but",
    "by",         "can",        "can't",     "cannot",    "could",     "couldn't",
    "did",        "didn't",     "do",        "does",      "doesn't",   "doing",
    "don't",      "dont",       "down",      "during",    "each",      "few",
    "for",        "from",       "further",   "had",       "hadn't",    "has",
    "hasn't",     "have",       "haven't",   "having",    "he",        "her",
    "here",       "hers",       "herself",   "him",       "himself",   "his",
    "how",        "i",          "if",        "in",        "into",      "is",
    "isn't",      "it",         "its",       "itself",    "just",      "let's",
    "me",         "more",       "most",      "mustn't",   "my",        "myself",
    "no",         "nor",        "not",       "now",       "of",        "off",
    "on",         "once",       "only",      "or",        "other",     "ought",
    "our",        "ours",       "ourselves", "out",       "over",      "own",
    "same",       "shan't",     "she",       "should",    "shouldn't", "so",
    "some",       "such",       "than",      "that",      "the",       "their",
    "theirs",     "them",       "themselves","then",      "there",     "these",
    "they",       "this",       "those",     "through",   "to",        "too",
    "under",      "until",      "up",        "upon",      "us",        "very",
    "was",        "wasn't",     "we",        "were",      "weren't",   "what",
    "when",       "where",      "which",     "while",     "who",       "whom",
    "why",        "will",       "with",      "won't",     "would",     "wouldn't",
    "you",        "your",       "yours",     "yourself",  "yourselves","also",
    "although",   "always",     "among",     "anyone",    "anything",  "became",
    "become",     "becomes",    "besides",   "beyond",    "cant",      "come",
    "e",          "else",       "etc",       "ever",      "every",     "g",
    "get",        "gets",       "however",   "may",       "might",     "much",
};

/// Sorted copy built once; the raw literal is grouped thematically, not
/// alphabetically, so sort at first use to enable binary search.
const std::array<std::string_view, 174>& sorted_stopwords() {
  static const std::array<std::string_view, 174> sorted = [] {
    auto copy = kStopwordsRaw;
    std::sort(copy.begin(), copy.end());
    return copy;
  }();
  return sorted;
}

}  // namespace

bool is_stopword(std::string_view word) {
  const auto& words = sorted_stopwords();
  return std::binary_search(words.begin(), words.end(), word);
}

std::size_t stopword_count() { return kStopwordsRaw.size(); }

}  // namespace planetp::text
