#include "util/golomb.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/bitio.hpp"

namespace planetp {

namespace {

/// Number of bits needed to represent values in [0, m).
unsigned bits_for_remainder(std::uint64_t m) {
  return m <= 1 ? 0 : static_cast<unsigned>(std::bit_width(m - 1));
}

/// Truncated-binary codes are prefix codes only when written MSB-first; the
/// generic BitWriter/BitReader are LSB-first, so the remainder path uses
/// these helpers.
void write_msb(BitWriter& out, std::uint64_t value, unsigned nbits) {
  for (unsigned i = nbits; i-- > 0;) out.write_bit((value >> i) & 1);
}

std::uint64_t read_msb(BitReader& in, unsigned nbits) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < nbits; ++i) v = (v << 1) | (in.read_bit() ? 1 : 0);
  return v;
}

}  // namespace

void golomb_encode(BitWriter& out, std::uint64_t value, std::uint64_t m) {
  if (m == 0) throw std::invalid_argument("golomb_encode: m must be > 0");
  const std::uint64_t q = value / m;
  const std::uint64_t r = value % m;
  out.write_unary(q);
  if (m == 1) return;  // remainder always 0
  // Truncated binary encoding of the remainder.
  const unsigned b = bits_for_remainder(m);
  const std::uint64_t cutoff = (std::uint64_t{1} << b) - m;
  if (r < cutoff) {
    write_msb(out, r, b - 1);
  } else {
    write_msb(out, r + cutoff, b);
  }
}

std::uint64_t golomb_decode(BitReader& in, std::uint64_t m) {
  if (m == 0) throw std::invalid_argument("golomb_decode: m must be > 0");
  const std::uint64_t q = in.read_unary();
  if (m == 1) return q;
  const unsigned b = bits_for_remainder(m);
  const std::uint64_t cutoff = (std::uint64_t{1} << b) - m;
  std::uint64_t r = read_msb(in, b - 1);
  if (r >= cutoff) {
    r = (r << 1) | (in.read_bit() ? 1 : 0);
    r -= cutoff;
  }
  return q * m + r;
}

std::uint64_t golomb_optimal_m(std::size_t set_bits, std::size_t total_bits) {
  // Degenerate densities: an empty vector has no gaps to code, and a full
  // (or over-full) vector has gaps that are all zero — unary m=1 codes each
  // in a single bit, which is optimal. This also covers single-bit vectors
  // (total_bits == 1), where set_bits is necessarily 0 or 1.
  if (set_bits == 0 || total_bits == 0) return 1;
  if (set_bits >= total_bits) return 1;
  const double p = static_cast<double>(set_bits) / static_cast<double>(total_bits);
  // M = ceil(log(2 - p) / -log(1 - p)) ~= 0.69 / p for small p. log1p keeps
  // the denominator accurate when p is tiny: log(1.0 - p) rounds to 0 below
  // ~1e-16 and the division would blow up to +inf (UB on the cast below).
  const double m = std::ceil(std::log(2.0 - p) / -std::log1p(-p));
  // A gap can never exceed total_bits, so any larger m only pads remainder
  // bits; the cap also bounds the result if the division still misbehaves.
  const double cap = static_cast<double>(total_bits);
  if (!std::isfinite(m) || m > cap) return total_bits;
  return m < 1.0 ? 1 : static_cast<std::uint64_t>(m);
}

CompressedBits compress_bits(const BitVector& bits) {
  CompressedBits c;
  c.nbits = bits.size();
  c.set_bits = bits.count();
  c.m = golomb_optimal_m(c.set_bits, c.nbits);

  BitWriter writer;
  std::size_t prev = 0;
  bool first = true;
  bits.for_each_set([&](std::size_t idx) {
    const std::uint64_t gap = first ? idx : idx - prev - 1;
    golomb_encode(writer, gap, c.m);
    prev = idx;
    first = false;
  });
  c.payload = writer.take();
  return c;
}

BitVector decompress_bits(const CompressedBits& c) {
  BitVector bits(static_cast<std::size_t>(c.nbits));
  BitReader reader(c.payload);
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < c.set_bits; ++i) {
    const std::uint64_t gap = golomb_decode(reader, c.m);
    pos = (i == 0) ? gap : pos + gap + 1;
    if (pos >= c.nbits) throw std::out_of_range("decompress_bits: corrupt stream");
    bits.set(pos);
  }
  return bits;
}

std::vector<std::uint64_t> golomb_positions(const CompressedBits& c) {
  std::vector<std::uint64_t> positions;
  positions.reserve(static_cast<std::size_t>(c.set_bits));
  BitReader reader(c.payload);
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < c.set_bits; ++i) {
    const std::uint64_t gap = golomb_decode(reader, c.m);
    pos = (i == 0) ? gap : pos + gap + 1;
    if (pos >= c.nbits) throw std::out_of_range("golomb_positions: corrupt stream");
    positions.push_back(pos);
  }
  return positions;
}

CompressedBits compress_positions(std::span<const std::uint64_t> positions,
                                  std::uint64_t nbits) {
  CompressedBits c;
  c.nbits = nbits;
  c.set_bits = positions.size();
  c.m = golomb_optimal_m(positions.size(), static_cast<std::size_t>(nbits));

  BitWriter writer;
  std::uint64_t prev = 0;
  bool first = true;
  for (const std::uint64_t idx : positions) {
    const std::uint64_t gap = first ? idx : idx - prev - 1;
    golomb_encode(writer, gap, c.m);
    prev = idx;
    first = false;
  }
  c.payload = writer.take();
  return c;
}

CompressedBits xor_merge(const CompressedBits& a, const CompressedBits& b) {
  if (a.nbits != b.nbits) throw std::invalid_argument("xor_merge: size mismatch");
  const std::vector<std::uint64_t> pa = golomb_positions(a);
  const std::vector<std::uint64_t> pb = golomb_positions(b);
  std::vector<std::uint64_t> merged;
  merged.reserve(pa.size() + pb.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i] < pb[j]) {
      merged.push_back(pa[i++]);
    } else if (pb[j] < pa[i]) {
      merged.push_back(pb[j++]);
    } else {  // present in both: XOR cancels the bit
      ++i;
      ++j;
    }
  }
  merged.insert(merged.end(), pa.begin() + static_cast<std::ptrdiff_t>(i), pa.end());
  merged.insert(merged.end(), pb.begin() + static_cast<std::ptrdiff_t>(j), pb.end());
  return compress_positions(merged, a.nbits);
}

}  // namespace planetp
