// vector_model is header-only math; this TU anchors the target.
#include "search/vector_model.hpp"
