#include "gossip/protocol.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>

#include "bloom/wire.hpp"

namespace planetp::gossip {
namespace {

/// Tiny synchronous message pump for driving a handful of Protocol instances
/// without a simulator: messages are delivered immediately, in FIFO order.
class Pump {
 public:
  Protocol& add(PeerId id, GossipConfig config = {}) {
    peers_.emplace(id, std::make_unique<Protocol>(id, config, Rng(id * 7919 + 13)));
    return *peers_.at(id);
  }

  Protocol& peer(PeerId id) { return *peers_.at(id); }

  void enqueue(PeerId from, std::vector<Protocol::Outgoing> batch) {
    for (auto& out : batch) queue_.push_back({from, std::move(out)});
  }

  /// Deliver every queued message (and the replies they generate).
  std::size_t drain(TimePoint now = 0) {
    std::size_t delivered = 0;
    while (!queue_.empty()) {
      auto [from, out] = std::move(queue_.front());
      queue_.pop_front();
      auto it = peers_.find(out.to);
      if (it == peers_.end() || offline_.contains(out.to)) {
        peers_.at(from)->on_send_failed(out.to, now);
        continue;
      }
      enqueue(out.to, it->second->on_message(now, from, out.msg));
      ++delivered;
    }
    return delivered;
  }

  void round(PeerId id, TimePoint now = 0) { enqueue(id, peer(id).on_round(now)); }

  void set_offline(PeerId id, bool offline) {
    if (offline) {
      offline_.insert(id);
    } else {
      offline_.erase(id);
    }
  }

 private:
  std::map<PeerId, std::unique_ptr<Protocol>> peers_;
  std::deque<std::pair<PeerId, Protocol::Outgoing>> queue_;
  std::set<PeerId> offline_;
};

GossipConfig test_config() {
  GossipConfig cfg;
  cfg.stop_count = 2;
  return cfg;
}

TEST(Protocol, LocalJoinCreatesOwnRecordAndHotRumor) {
  Protocol p(1, test_config(), Rng(1));
  p.local_join("addr:1", LinkClass::kFast, 500, {}, 0);
  EXPECT_EQ(p.own_version(), 1u);
  EXPECT_EQ(p.hot_rumor_count(), 1u);
  const PeerRecord* self = p.directory().find(1);
  ASSERT_NE(self, nullptr);
  EXPECT_EQ(self->key_count, 500u);
}

TEST(Protocol, QuietStartHasNoRumor) {
  Protocol p(1, test_config(), Rng(1));
  p.quiet_start("addr:1", LinkClass::kFast, 500, {});
  EXPECT_EQ(p.hot_rumor_count(), 0u);
  EXPECT_EQ(p.own_version(), 1u);
}

TEST(Protocol, FilterChangeBumpsVersionAndRumors) {
  Protocol p(1, test_config(), Rng(1));
  p.quiet_start("addr:1", LinkClass::kFast, 500, {});
  p.local_filter_change(600, 100, {}, {}, 0);
  EXPECT_EQ(p.own_version(), 2u);
  EXPECT_EQ(p.hot_rumor_count(), 1u);
  EXPECT_EQ(p.directory().find(1)->key_count, 600u);
}

TEST(Protocol, NewerLocalEventSupersedesOlderHotRumor) {
  Protocol p(1, test_config(), Rng(1));
  p.local_join("addr:1", LinkClass::kFast, 100, {}, 0);
  p.local_filter_change(200, 100, {}, {}, 0);
  // Only the newest version of our record should still be spreading.
  EXPECT_EQ(p.hot_rumor_count(), 1u);
}

TEST(Protocol, RumorSpreadsToTarget) {
  Pump pump;
  auto& a = pump.add(1);
  auto& b = pump.add(2);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});
  b.bootstrap({*a.directory().find(1)});

  a.local_filter_change(1000, 1000, {}, {}, 0);
  pump.round(1);
  pump.drain();

  const PeerRecord* seen = b.directory().find(1);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->version, 2u);
  EXPECT_EQ(seen->key_count, 1000u);
  // B now spreads the rumor too.
  EXPECT_EQ(b.hot_rumor_count(), 1u);
}

TEST(Protocol, StopCounterRetiresRumor) {
  Pump pump;
  auto& a = pump.add(1);
  auto& b = pump.add(2);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});
  b.bootstrap({*a.directory().find(1)});

  a.local_filter_change(10, 10, {}, {}, 0);
  // First round: b learns (counter resets). Next rounds: b already knows, so
  // after stop_count consecutive known-acks the rumor retires.
  for (int i = 0; i < 1 + test_config().stop_count; ++i) {
    pump.round(1);
    pump.drain();
  }
  EXPECT_EQ(a.hot_rumor_count(), 0u);
}

TEST(Protocol, AntiEntropyPullsMissingRecords) {
  Pump pump;
  auto& a = pump.add(1);
  auto& b = pump.add(2);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});
  b.bootstrap({*a.directory().find(1)});

  // b knows about a third peer that a has never heard of.
  PeerRecord ghost;
  ghost.id = 3;
  ghost.address = "c";
  ghost.version = 4;
  ghost.key_count = 77;
  b.directory().apply(ghost);

  // a has no rumors -> its round is anti-entropy (SummaryRequest to b).
  pump.round(1);
  pump.drain();

  const PeerRecord* seen = a.directory().find(3);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->version, 4u);
  EXPECT_EQ(seen->key_count, 77u);
}

TEST(Protocol, PullResponsesShareOneRumorEncoding) {
  // Serving the same record to repeated pulls must hand out one interned
  // rumor (one wire encoding), and invalidate it when the record changes.
  Pump pump;
  auto& a = pump.add(1);
  auto& b = pump.add(2);
  a.quiet_start("a", LinkClass::kFast, 100, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});
  b.bootstrap({*a.directory().find(1)});

  const std::uint64_t v = a.directory().find(1)->version;
  auto r1 = a.on_message(0, 2, PullRequestMsg{{{1, v}}});
  auto r2 = a.on_message(0, 2, PullRequestMsg{{{1, v}}});
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_EQ(r2.size(), 1u);
  const auto* p1 = std::get_if<PullResponseMsg>(&r1[0].msg);
  const auto* p2 = std::get_if<PullResponseMsg>(&r2[0].msg);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  ASSERT_EQ(p1->rumors.size(), 1u);
  EXPECT_EQ(p1->rumors.ptr(0).get(), p2->rumors.ptr(0).get());

  a.local_filter_change(150, 50, {}, {}, 0);  // version bump stales the cache
  const std::uint64_t v2 = a.directory().find(1)->version;
  ASSERT_GT(v2, v);
  auto r3 = a.on_message(0, 2, PullRequestMsg{{{1, v2}}});
  const auto* p3 = std::get_if<PullResponseMsg>(&r3[0].msg);
  ASSERT_NE(p3, nullptr);
  ASSERT_EQ(p3->rumors.size(), 1u);
  EXPECT_NE(p3->rumors.ptr(0).get(), p1->rumors.ptr(0).get());
  EXPECT_EQ(p3->rumors[0].version, v2);
  EXPECT_EQ(p3->rumors[0].key_count, 150u);
}

TEST(Protocol, PartialAntiEntropyRecoversRetiredRumor) {
  // c missed the rumor while a spread and retired it; when a rumors
  // something else to c, the piggybacked recent ids let c pull the miss.
  GossipConfig cfg = test_config();
  cfg.stop_count = 5;  // keep rumors alive long enough to reach c at random
  Pump pump;
  auto& a = pump.add(1, cfg);
  auto& b = pump.add(2, cfg);
  auto& c = pump.add(3, cfg);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  c.quiet_start("c", LinkClass::kFast, 0, {});
  const std::vector<PeerRecord> all = {*a.directory().find(1), *b.directory().find(2),
                                       *c.directory().find(3)};
  a.bootstrap(all);
  b.bootstrap(all);
  c.bootstrap(all);

  // a creates a rumor about itself; a and b spread and retire it while c is
  // offline, so the event ends up only in their recent lists.
  pump.set_offline(3, true);
  a.local_filter_change(50, 50, {}, {}, 0);
  for (int i = 0; i < 30 && (a.hot_rumor_count() > 0 || b.hot_rumor_count() > 0); ++i) {
    pump.round(1);
    pump.round(2);
    pump.drain();
  }
  ASSERT_EQ(a.hot_rumor_count(), 0u);
  ASSERT_EQ(b.hot_rumor_count(), 0u);
  ASSERT_EQ(c.directory().find(1)->version, 1u);  // c missed it

  // c comes back; b starts an unrelated rumor (about itself). When b rumors
  // to c, the piggybacked recent ids include a's retired event, and c pulls
  // it — that is the partial anti-entropy path.
  pump.set_offline(3, false);
  a.directory().mark_online(3);
  b.directory().mark_online(3);
  b.local_filter_change(60, 10, {}, {}, 0);
  bool c_caught_up = false;
  for (int i = 0; i < 100 && !c_caught_up; ++i) {
    pump.round(2);
    pump.drain();
    c_caught_up = c.directory().find(1)->version >= 2;
  }
  EXPECT_TRUE(c_caught_up);
  EXPECT_EQ(c.directory().find(1)->key_count, 50u);
}

TEST(Protocol, JoinViaIntroducerDownloadsDirectory) {
  Pump pump;
  auto& a = pump.add(1);
  auto& b = pump.add(2);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  for (PeerId id = 10; id < 15; ++id) {
    PeerRecord r;
    r.id = id;
    r.version = 2;
    r.address = "peer" + std::to_string(id);
    a.directory().apply(r);
  }

  // b joins via a.
  b.local_join("b", LinkClass::kFast, 99, {}, 0);
  pump.enqueue(2, {b.join_via(1)});
  pump.drain();

  // b pulled everything a knew.
  EXPECT_GE(b.directory().size(), 7u);  // a + b + 5 ghosts
  EXPECT_NE(b.directory().find(12), nullptr);
}

TEST(Protocol, SendFailureMarksPeerOffline) {
  Pump pump;
  auto& a = pump.add(1);
  auto& b = pump.add(2);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});

  pump.set_offline(2, true);
  a.local_filter_change(10, 10, {}, {}, 0);
  pump.round(1);
  pump.drain();
  EXPECT_FALSE(a.directory().find(2)->online);

  // Hearing from the peer again flips it back online.
  auto replies = a.on_message(0, 2, SummaryRequestMsg{});
  EXPECT_TRUE(a.directory().find(2)->online);
  EXPECT_FALSE(replies.empty());
}

TEST(Protocol, AdaptiveIntervalGrowsWhenStable) {
  GossipConfig cfg = test_config();
  Pump pump;
  auto& a = pump.add(1, cfg);
  auto& b = pump.add(2, cfg);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});
  b.bootstrap({*a.directory().find(1)});

  const Duration base = a.current_interval();
  // Stable community: every round is a gossip-less anti-entropy contact.
  for (int i = 0; i < 2 * cfg.gossipless_threshold; ++i) {
    pump.round(1);
    pump.drain();
  }
  EXPECT_GT(a.current_interval(), base);
}

TEST(Protocol, AdaptiveIntervalCapsAtMax) {
  GossipConfig cfg = test_config();
  cfg.max_interval = cfg.base_interval + 2 * cfg.slow_down;
  Pump pump;
  auto& a = pump.add(1, cfg);
  auto& b = pump.add(2, cfg);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});
  b.bootstrap({*a.directory().find(1)});

  for (int i = 0; i < 50; ++i) {
    pump.round(1);
    pump.drain();
  }
  EXPECT_EQ(a.current_interval(), cfg.max_interval);
}

TEST(Protocol, IntervalResetsOnIncomingRumor) {
  GossipConfig cfg = test_config();
  Pump pump;
  auto& a = pump.add(1, cfg);
  auto& b = pump.add(2, cfg);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});
  b.bootstrap({*a.directory().find(1)});

  for (int i = 0; i < 2 * cfg.gossipless_threshold; ++i) {
    pump.round(1);
    pump.drain();
  }
  ASSERT_GT(a.current_interval(), cfg.base_interval);

  // b rumors to a -> a resets to the base interval.
  b.local_filter_change(5, 5, {}, {}, 0);
  pump.round(2);
  pump.drain();
  EXPECT_EQ(a.current_interval(), cfg.base_interval);
}

TEST(Protocol, AntiEntropyOnlyModePushesSummaries) {
  GossipConfig cfg = test_config();
  cfg.enable_rumoring = false;
  Pump pump;
  auto& a = pump.add(1, cfg);
  auto& b = pump.add(2, cfg);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});
  b.bootstrap({*a.directory().find(1)});

  a.local_filter_change(10, 10, {}, {}, 0);
  // Rumoring is off: the round must emit a pushed summary, and b must pull
  // the new record through it.
  auto batch = a.on_round(0);
  ASSERT_EQ(batch.size(), 1u);
  const auto* summary = std::get_if<SummaryMsg>(&batch[0].msg);
  ASSERT_NE(summary, nullptr);
  EXPECT_TRUE(summary->push);

  pump.enqueue(1, std::move(batch));
  pump.drain();
  EXPECT_EQ(b.directory().find(1)->version, 2u);
}

TEST(Protocol, PartialAeDisabledSendsNoPiggyback) {
  GossipConfig cfg = test_config();
  cfg.enable_partial_ae = false;
  Protocol a(1, cfg, Rng(1));
  a.quiet_start("a", LinkClass::kFast, 0, {});
  PeerRecord b;
  b.id = 2;
  b.version = 1;
  b.address = "b";
  a.directory().apply(b);

  a.local_filter_change(10, 10, {}, {}, 0);
  auto batch = a.on_round(0);
  ASSERT_EQ(batch.size(), 1u);
  const auto* rumor = std::get_if<RumorMsg>(&batch[0].msg);
  ASSERT_NE(rumor, nullptr);
  EXPECT_TRUE(rumor->recent_ids.empty());
}

TEST(Protocol, DeadPeerExpiresAfterTDead) {
  GossipConfig cfg = test_config();
  cfg.t_dead = kHour;
  Protocol a(1, cfg, Rng(1));
  a.quiet_start("a", LinkClass::kFast, 0, {});
  PeerRecord b;
  b.id = 2;
  b.version = 1;
  b.address = "b";
  a.directory().apply(b);
  a.on_send_failed(2, 0);

  PeerId expired = kInvalidPeer;
  a.hooks().on_expire = [&](PeerId id) { expired = id; };
  a.on_round(2 * kHour);
  EXPECT_EQ(expired, 2u);
  EXPECT_EQ(a.directory().find(2), nullptr);
}

TEST(Protocol, LiveFilterDiffIsAppliedOnRumor) {
  // Full live-mode path: the origin sends a real encoded diff; a receiver
  // holding the base version applies it and ends with the exact filter.
  bloom::BloomParams params{4096, 2};
  bloom::BloomFilter v1(params);
  v1.insert("alpha");
  ByteWriter v1w;
  bloom::encode_filter(v1w, v1);
  const auto v1_wire = v1w.take();

  bloom::BloomFilter v2 = v1;
  v2.insert("beta");
  ByteWriter diffw;
  bloom::encode_diff(diffw, v2.diff_from(v1));

  Protocol a(1, test_config(), Rng(1));
  a.quiet_start("a", LinkClass::kFast, 1, {});
  // a holds b's v1 record with the v1 filter.
  PeerRecord b;
  b.id = 2;
  b.version = 1;
  b.address = "b";
  b.filter_wire = v1_wire;
  a.directory().apply(b);

  // b's v2 rumor arrives with a diff against v1.
  RumorPayload p;
  p.origin = 2;
  p.version = 2;
  p.address = "b";
  p.kind = EventKind::kFilterChange;
  p.key_count = 2;
  FilterUpdate f;
  f.base_version = 1;
  f.bits = diffw.take();
  f.key_count = 2;
  f.new_keys = 1;
  p.filter = std::move(f);

  RumorMsg msg;
  msg.rumors.push_back(std::move(p));
  a.on_message(0, 2, msg);

  const PeerRecord* seen = a.directory().find(2);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->version, 2u);
  ByteReader reader(seen->filter_wire);
  const bloom::BloomFilter reconstructed = bloom::decode_filter(reader);
  EXPECT_EQ(reconstructed, v2);
}

TEST(Protocol, DiffWithoutBaseTriggersFullPull) {
  Protocol a(1, test_config(), Rng(1));
  a.quiet_start("a", LinkClass::kFast, 1, {});

  // Rumor about an unknown peer whose filter is only a diff: a must accept
  // the record and ask the sender for the full filter.
  RumorPayload p;
  p.origin = 2;
  p.version = 5;
  p.address = "b";
  p.key_count = 10;
  FilterUpdate f;
  f.base_version = 4;       // we do not hold version 4
  f.bits = {1, 2, 3, 4};    // opaque diff bytes
  f.key_count = 10;
  f.new_keys = 1;
  p.filter = std::move(f);
  RumorMsg msg;
  msg.rumors.push_back(std::move(p));

  const auto replies = a.on_message(0, 3, msg);
  bool pulled = false;
  for (const auto& out : replies) {
    if (const auto* pull = std::get_if<PullRequestMsg>(&out.msg)) {
      ASSERT_EQ(pull->ids.size(), 1u);
      EXPECT_EQ(pull->ids[0], (RumorId{2, 5}));
      EXPECT_EQ(out.to, 3u);
      pulled = true;
    }
  }
  EXPECT_TRUE(pulled);
  EXPECT_EQ(a.directory().find(2)->version, 5u);
}

TEST(Protocol, BandwidthAwareFastPeerPrefersFast) {
  GossipConfig cfg = test_config();
  cfg.bandwidth_aware = true;
  cfg.fast_to_slow_prob = 0.0;  // deterministic: never talk to slow
  Protocol a(1, cfg, Rng(1));
  a.quiet_start("a", LinkClass::kFast, 0, {});
  PeerRecord fast;
  fast.id = 2;
  fast.version = 1;
  fast.link_class = LinkClass::kFast;
  PeerRecord slow;
  slow.id = 3;
  slow.version = 1;
  slow.link_class = LinkClass::kSlow;
  a.directory().apply(fast);
  a.directory().apply(slow);

  a.local_filter_change(10, 10, {}, {}, 0);
  for (int i = 0; i < 20; ++i) {
    auto batch = a.on_round(0);
    for (const auto& out : batch) {
      if (std::holds_alternative<RumorMsg>(out.msg)) {
        EXPECT_EQ(out.to, 2u);
      }
    }
  }
}


TEST(Protocol, RumorPayloadCapRotates) {
  GossipConfig cfg = test_config();
  // 100-byte budget fits two 48-byte filterless records per message.
  cfg.max_rumor_bytes_per_message = 100;
  Protocol a(1, cfg, Rng(1));
  a.quiet_start("a", LinkClass::kFast, 0, {});
  PeerRecord target;
  target.id = 2;
  target.version = 1;
  target.address = "b";
  a.directory().apply(target);

  // Five hot rumors about five remote origins (pulled knowledge spreads).
  RumorMsg incoming;
  for (PeerId origin = 10; origin < 15; ++origin) {
    RumorPayload p;
    p.origin = origin;
    p.version = 3;
    p.address = "peer" + std::to_string(origin);
    incoming.rumors.push_back(std::move(p));
  }
  a.on_message(0, 2, incoming);
  ASSERT_EQ(a.hot_rumor_count(), 5u);

  // Each round sends at most 2 payloads; over 3 rounds all 5 distinct
  // rumors must appear (rotation).
  std::set<PeerId> seen;
  for (int round = 0; round < 3; ++round) {
    auto batch = a.on_round(0);
    for (const auto& out : batch) {
      if (const auto* msg = std::get_if<RumorMsg>(&out.msg)) {
        EXPECT_LE(msg->rumors.size(), 2u);
        for (const auto& p : msg->rumors) seen.insert(p.origin);
      }
    }
  }
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace planetp::gossip
