#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/varint.hpp"

/// \file byte_buffer.hpp
/// Bounds-checked binary serialization used by all PlanetP wire messages.
/// Fixed-width integers are little-endian; sizes and counts are varints.

namespace planetp {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void varint(std::uint64_t v) { put_varint(buf_, v); }
  void svarint(std::int64_t v) { put_varint(buf_, zigzag_encode(v)); }

  /// Length-prefixed byte string.
  void bytes(std::span<const std::uint8_t> data);
  void str(std::string_view s);

  /// Raw append without a length prefix (caller handles framing).
  void raw(std::span<const std::uint8_t> data);

  /// Pre-allocate for \p n total bytes; with an exact size from the caller
  /// (see gossip::encoded_size) the writer never reallocates mid-message.
  void reserve(std::size_t n) { buf_.reserve(n); }
  /// Drop contents but keep the allocation, for buffer reuse across messages.
  void clear() { buf_.clear(); }

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return buf_.capacity(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reader over a borrowed byte span; throws std::out_of_range on underflow.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::uint64_t varint() { return get_varint(data_.data(), data_.size(), pos_); }
  std::int64_t svarint() { return zigzag_decode(varint()); }

  /// Read a list count, rejecting any value that cannot possibly fit in the
  /// bytes left (each element consumes at least \p min_elem_bytes). Guards
  /// the reserve() that follows against corrupt or hostile length prefixes.
  std::size_t count(std::size_t min_elem_bytes = 1);

  std::vector<std::uint8_t> bytes();
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace planetp
