#include "index/document.hpp"

#include "index/xml.hpp"

namespace planetp::index {

namespace {

/// File types PlanetP knows how to extract text from (§2 mentions
/// postscript, PDF, text). In this reproduction, link content is supplied
/// inline in the XML (<link> body) or left unindexed — there is no real
/// filesystem of postscript files to crawl.
bool is_indexable_type(std::string_view type) {
  return type == "text" || type == "txt" || type == "postscript" || type == "ps" ||
         type == "pdf";
}

void collect_links(const xml::Element& el, std::vector<ExternalLink>& links) {
  if (el.tag == "link" || el.tag == "xpointer" || !el.attr("href").empty()) {
    std::string_view href = el.attr("href");
    if (!href.empty()) {
      ExternalLink link;
      link.href = std::string(href);
      link.content_type = std::string(el.attr("type"));
      if (is_indexable_type(link.content_type)) {
        link.content = el.all_text();
      }
      links.push_back(std::move(link));
    }
  }
  for (const auto& c : el.children) collect_links(*c, links);
}

}  // namespace

Document make_document(DocumentId id, std::string xml_source) {
  Document doc;
  doc.id = id;
  doc.xml_source = std::move(xml_source);

  const auto root = xml::parse(doc.xml_source);
  doc.title = std::string(root->attr("title"));
  if (doc.title.empty()) {
    if (const xml::Element* t = root->child("title")) doc.title = t->text;
  }
  doc.text = root->all_text();
  collect_links(*root, doc.links);
  // Text of indexable links is already inside all_text() because links carry
  // their extracted content inline; nothing further to append.
  return doc;
}

std::string wrap_text_as_xml(std::string_view title, std::string_view body) {
  std::string out = "<document title=\"";
  out += xml::escape(title);
  out += "\">";
  out += xml::escape(body);
  out += "</document>";
  return out;
}

}  // namespace planetp::index
