#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bloom/counting_bloom.hpp"
#include "index/document.hpp"
#include "index/inverted_index.hpp"
#include "text/analyzer.hpp"

/// \file data_store.hpp
/// The per-peer local data store of §2: published XML documents, the local
/// inverted index over them, and the (counting) Bloom filter summarizing the
/// index's term set. The plain projection of that filter is what the peer
/// gossips; a monotonically increasing version number tracks changes so the
/// directory can tell stale summaries from fresh ones.

namespace planetp::index {

class DataStore {
 public:
  explicit DataStore(std::uint32_t peer_id, bloom::BloomParams bloom_params = {},
                     text::AnalyzerOptions analyzer_opts = {});

  /// Publish an XML document; indexes its text and updates the Bloom filter.
  /// Returns the new document's id. Throws on malformed XML.
  DocumentId publish(std::string xml_source);

  /// Publish pre-extracted plain text under a title (convenience wrapper
  /// that builds the XML envelope).
  DocumentId publish_text(std::string_view title, std::string_view body);

  /// Publish under a caller-chosen local id (snapshot restore: documents
  /// must keep their community-visible ids). Throws if the id is taken.
  DocumentId publish_as(std::uint32_t local_id, std::string xml_source);

  /// The next local id publish() would assign (snapshot metadata).
  std::uint32_t next_local_id() const { return next_local_id_; }

  /// Ensure future publishes use ids >= \p next (snapshot restore: ids of
  /// documents unpublished before the snapshot must never be reused).
  void reserve_local_ids(std::uint32_t next) {
    if (next > next_local_id_) next_local_id_ = next;
  }

  /// Remove a published document. Returns false if unknown.
  bool unpublish(DocumentId id);

  /// Replace a published document's content in place (same id, new XML):
  /// reindexes and updates the filter. Returns false if the id is unknown.
  /// Throws on malformed XML, leaving the old version intact.
  bool republish(DocumentId id, std::string xml_source);

  /// The stored document, or nullptr.
  const Document* document(DocumentId id) const;

  /// Documents whose text contains *all* query terms (local exhaustive
  /// search; terms are analyzed with the same pipeline as documents).
  std::vector<DocumentId> search_all_terms(std::string_view query) const;

  /// Current Bloom filter (plain projection of the counting filter).
  bloom::BloomFilter bloom_filter() const { return counting_filter_.to_bloom_filter(); }

  /// Version incremented on every publish/unpublish that changes the term
  /// set summary.
  std::uint64_t filter_version() const { return filter_version_; }

  const InvertedIndex& index() const { return index_; }
  const text::Analyzer& analyzer() const { return analyzer_; }
  std::uint32_t peer_id() const { return peer_id_; }
  std::size_t num_documents() const { return docs_.size(); }

  /// All stored documents (ids ascending).
  std::vector<DocumentId> documents() const { return index_.documents(); }

 private:
  std::uint32_t peer_id_;
  std::uint32_t next_local_id_ = 0;
  text::Analyzer analyzer_;
  InvertedIndex index_;
  bloom::CountingBloomFilter counting_filter_;
  std::uint64_t filter_version_ = 0;
  std::unordered_map<DocumentId, Document, DocumentIdHash> docs_;
  /// Distinct-term reference counts so the counting filter sees one
  /// insert/remove per (document, distinct term).
  std::unordered_map<DocumentId, std::vector<std::string>, DocumentIdHash> doc_terms_;
};

}  // namespace planetp::index
