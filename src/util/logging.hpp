#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

/// \file logging.hpp
/// Small leveled logger. Thread-safe; the live TCP runtime logs from reactor
/// and timer threads concurrently. Defaults to warnings-only so benchmarks
/// stay quiet.

namespace planetp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  bool enabled(LogLevel level) const { return level >= level_; }

  /// Write one line; includes the level tag and component name.
  void log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

#define PLANETP_LOG(level, component, ...)                                          \
  do {                                                                              \
    if (::planetp::Logger::instance().enabled(level)) {                             \
      ::planetp::Logger::instance().log(                                            \
          level, component, ::planetp::detail::format_parts(__VA_ARGS__));          \
    }                                                                               \
  } while (0)

#define PLOG_DEBUG(component, ...) PLANETP_LOG(::planetp::LogLevel::kDebug, component, __VA_ARGS__)
#define PLOG_INFO(component, ...) PLANETP_LOG(::planetp::LogLevel::kInfo, component, __VA_ARGS__)
#define PLOG_WARN(component, ...) PLANETP_LOG(::planetp::LogLevel::kWarn, component, __VA_ARGS__)
#define PLOG_ERROR(component, ...) PLANETP_LOG(::planetp::LogLevel::kError, component, __VA_ARGS__)

}  // namespace planetp
