#include "bloom/bloom_filter.hpp"

#include <cmath>
#include <stdexcept>

namespace planetp::bloom {

double BloomParams::false_positive_rate(std::size_t n) const {
  const double m = static_cast<double>(bits);
  const double k = static_cast<double>(num_hashes);
  const double fill = 1.0 - std::exp(-k * static_cast<double>(n) / m);
  return std::pow(fill, k);
}

BloomParams BloomParams::for_capacity(std::size_t n, double target_fpr, std::uint32_t hashes) {
  if (n == 0) n = 1;
  if (target_fpr <= 0.0 || target_fpr >= 1.0) {
    throw std::invalid_argument("BloomParams::for_capacity: fpr must be in (0,1)");
  }
  const double k = static_cast<double>(hashes);
  // Solve (1 - e^{-kn/m})^k = fpr for m.
  const double inner = std::pow(target_fpr, 1.0 / k);
  const double m = -k * static_cast<double>(n) / std::log(1.0 - inner);
  BloomParams p;
  p.num_hashes = hashes;
  p.bits = static_cast<std::size_t>(std::ceil(m));
  if (p.bits < 64) p.bits = 64;
  return p;
}

BloomFilter::BloomFilter(BloomParams params) : params_(params), bits_(params.bits) {
  if (params_.bits == 0 || params_.num_hashes == 0) {
    throw std::invalid_argument("BloomFilter: bits and num_hashes must be > 0");
  }
}

void BloomFilter::insert(std::string_view term) { insert(hash_pair(term)); }

void BloomFilter::insert(const HashPair& hp) {
  for (std::uint32_t i = 0; i < params_.num_hashes; ++i) {
    bits_.set(static_cast<std::size_t>(hp.ith(i) % bits_.size()));
  }
}

bool BloomFilter::contains(std::string_view term) const { return contains(hash_pair(term)); }

bool BloomFilter::contains(const HashPair& hp) const {
  for (std::uint32_t i = 0; i < params_.num_hashes; ++i) {
    if (!bits_.test(static_cast<std::size_t>(hp.ith(i) % bits_.size()))) return false;
  }
  return true;
}

double BloomFilter::estimated_cardinality() const {
  const double m = static_cast<double>(bits_.size());
  const double x = static_cast<double>(bits_.count());
  if (x >= m) return m;  // saturated
  const double k = static_cast<double>(params_.num_hashes);
  return -(m / k) * std::log(1.0 - x / m);
}

void BloomFilter::merge(const BloomFilter& other) {
  if (other.bit_size() != bit_size() || other.num_hashes() != num_hashes()) {
    throw std::invalid_argument("BloomFilter::merge: geometry mismatch");
  }
  bits_ |= other.bits_;
}

BitVector BloomFilter::diff_from(const BloomFilter& base) const {
  if (base.bit_size() != bit_size()) {
    throw std::invalid_argument("BloomFilter::diff_from: geometry mismatch");
  }
  return bits_ ^ base.bits_;
}

void BloomFilter::apply_diff(const BitVector& diff) {
  bits_ ^= diff;
}

}  // namespace planetp::bloom
