#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "search/vector_model.hpp"

/// \file ipf.hpp
/// Inverse Peer Frequency over a collection of gossiped Bloom filters (§5.2):
/// "IPF can conveniently be computed using the Bloom filters collected at
/// each peer: N is the number of Bloom filters, N_t is the number of hits
/// for term t against these Bloom filters."

namespace planetp::search {

/// A peer's filter as seen in the searcher's directory.
struct PeerFilter {
  std::uint32_t peer = 0;
  const bloom::BloomFilter* filter = nullptr;
  /// Local SUSPECT level (consecutive query-time failures recorded against
  /// this peer). Carried into rank_peers to demote flaky peers.
  std::uint32_t suspicion = 0;
};

/// Per-query IPF table: for each query term, which peers hit and the IPF
/// weight. Computed once per query by scanning the filter set.
class IpfTable {
 public:
  /// Scan \p filters for each term of \p terms.
  IpfTable(const std::vector<std::string>& terms, const std::vector<PeerFilter>& filters);

  /// IPF weight of a query term (0 when no peer has it).
  double weight(std::string_view term) const;

  /// Peers whose filter claims the term (possible false positives included).
  const std::vector<std::uint32_t>& peers_with(std::string_view term) const;

  std::size_t num_peers() const { return num_peers_; }
  const std::vector<std::string>& terms() const { return terms_; }

  /// SUSPECT level the searcher recorded against \p peer (0 = trusted).
  std::uint32_t suspicion_of(std::uint32_t peer) const;

  /// Term -> weight map (for shipping with a remote query).
  std::unordered_map<std::string, double> weights() const;

 private:
  struct Entry {
    double ipf = 0.0;
    std::vector<std::uint32_t> peers;
  };

  std::vector<std::string> terms_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::uint32_t, std::uint32_t> suspicion_;  ///< non-zero levels only
  std::size_t num_peers_ = 0;
};

}  // namespace planetp::search
