#pragma once

#include <cstdint>
#include <string_view>

#include "util/bitvector.hpp"
#include "util/hash.hpp"

/// \file bloom_filter.hpp
/// The Bloom filter (Bloom, 1970) that summarizes each peer's inverted-index
/// term set. PlanetP gossips these summaries instead of full indexes; they
/// may yield false positives but never false negatives, so the set of peers
/// whose filters hit a query is a superset of the peers with matching
/// documents (§2).
///
/// PlanetP uses fixed-size 50 KB filters (409,600 bits) with two hash
/// functions, sized for <=50,000 terms at under 5% false-positive rate
/// (§7.1). Variable sizing is supported for the accuracy/space trade-off
/// (merge + resize), which §2 lists as advantage (3).

namespace planetp::bloom {

/// Filter geometry.
struct BloomParams {
  std::size_t bits = 409'600;     ///< 50 KB, the paper's fixed wire size
  std::uint32_t num_hashes = 2;   ///< paper uses two hash functions

  bool operator==(const BloomParams&) const = default;

  /// Expected false-positive probability after inserting \p n keys:
  /// (1 - e^{-kn/m})^k.
  double false_positive_rate(std::size_t n) const;

  /// Geometry achieving false-positive rate <= \p target_fpr for \p n keys
  /// with the given number of hash functions.
  static BloomParams for_capacity(std::size_t n, double target_fpr, std::uint32_t hashes = 2);
};

class BloomFilter {
 public:
  BloomFilter() : BloomFilter(BloomParams{}) {}
  explicit BloomFilter(BloomParams params);

  /// Insert a term.
  void insert(std::string_view term);

  /// Insert a pre-hashed term (used by the index to avoid re-hashing).
  void insert(const HashPair& hp);

  /// Membership test; may return a false positive.
  bool contains(std::string_view term) const;
  bool contains(const HashPair& hp) const;

  /// Number of set bits / total bits.
  std::size_t popcount() const { return bits_.count(); }
  std::size_t bit_size() const { return bits_.size(); }
  std::uint32_t num_hashes() const { return params_.num_hashes; }

  /// Estimate of how many distinct keys were inserted, from the bit density:
  /// n ~= -(m/k) ln(1 - X/m).
  double estimated_cardinality() const;

  /// Merge another filter of identical geometry into this one (bitwise OR).
  /// This is the paper's "combine the filters of several peers to save
  /// space" operation; the merged filter answers for the union of term sets.
  void merge(const BloomFilter& other);

  /// XOR difference against \p base: the bits that changed. Gossiping sends
  /// this diff instead of the full filter when updating (§7.2). Applying the
  /// same diff to \p base with apply_diff restores *this exactly.
  BitVector diff_from(const BloomFilter& base) const;

  /// Apply an XOR diff produced by diff_from.
  void apply_diff(const BitVector& diff);

  /// Reset all bits.
  void clear() { bits_.clear(); }

  const BitVector& bits() const { return bits_; }
  BitVector& mutable_bits() { return bits_; }
  const BloomParams& params() const { return params_; }

  bool operator==(const BloomFilter& other) const = default;

 private:
  BloomParams params_;
  BitVector bits_;
};

}  // namespace planetp::bloom
