#include "index/persistence.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace planetp::index {
namespace {

bloom::BloomParams small_bloom() { return bloom::BloomParams{65536, 2}; }

DataStore make_store() {
  DataStore store(7, small_bloom());
  store.publish_text("First", "gossip protocols spread rumors epidemically");
  store.publish_text("Second", "bloom filters summarize sets compactly");
  store.publish_text("Third", "consistent hashing balances load");
  return store;
}

TEST(Persistence, RoundtripPreservesDocuments) {
  const DataStore original = make_store();
  const auto bytes = serialize_data_store(original);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());

  EXPECT_EQ(restored.peer_id(), original.peer_id());
  EXPECT_EQ(restored.num_documents(), 3u);
  ASSERT_EQ(restored.documents(), original.documents());
  for (const DocumentId& id : original.documents()) {
    const Document* a = original.document(id);
    const Document* b = restored.document(id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->title, b->title);
    EXPECT_EQ(a->xml_source, b->xml_source);
  }
}

TEST(Persistence, RestoredIndexAnswersQueries) {
  const auto bytes = serialize_data_store(make_store());
  const DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.search_all_terms("gossip rumors").size(), 1u);
  EXPECT_EQ(restored.search_all_terms("bloom filters").size(), 1u);
  EXPECT_TRUE(restored.search_all_terms("nonexistent").empty());
}

TEST(Persistence, RestoredBloomFilterMatches) {
  const DataStore original = make_store();
  const auto bytes = serialize_data_store(original);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.bloom_filter(), original.bloom_filter());
}

TEST(Persistence, IdGapsAreNotReused) {
  DataStore store(1, small_bloom());
  store.publish_text("keep", "alpha");
  const DocumentId doomed = store.publish_text("drop", "beta");
  store.publish_text("keep2", "gamma");
  store.unpublish(doomed);

  const auto bytes = serialize_data_store(store);
  DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.num_documents(), 2u);
  // New publishes continue after the highest ever-assigned id.
  const DocumentId fresh = restored.publish_text("new", "delta");
  EXPECT_GE(fresh.local, 3u);
}

TEST(Persistence, EmptyStoreRoundtrip) {
  DataStore empty(42, small_bloom());
  const auto bytes = serialize_data_store(empty);
  const DataStore restored = deserialize_data_store(bytes, small_bloom());
  EXPECT_EQ(restored.peer_id(), 42u);
  EXPECT_EQ(restored.num_documents(), 0u);
}

TEST(Persistence, CorruptMagicRejected) {
  auto bytes = serialize_data_store(make_store());
  bytes[0] = 'X';
  EXPECT_THROW(deserialize_data_store(bytes, small_bloom()), std::runtime_error);
}

TEST(Persistence, UnsupportedVersionRejected) {
  auto bytes = serialize_data_store(make_store());
  bytes[4] = 99;  // version field
  EXPECT_THROW(deserialize_data_store(bytes, small_bloom()), std::runtime_error);
}

TEST(Persistence, TruncatedSnapshotRejected) {
  auto bytes = serialize_data_store(make_store());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_data_store(bytes, small_bloom()), std::exception);
}

TEST(Persistence, FileRoundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "planetp_store_test.ppds").string();
  const DataStore original = make_store();
  ASSERT_TRUE(save_data_store(original, path));
  const DataStore restored = load_data_store(path, small_bloom());
  EXPECT_EQ(restored.num_documents(), original.num_documents());
  EXPECT_EQ(restored.bloom_filter(), original.bloom_filter());
  std::remove(path.c_str());
}

TEST(Persistence, LoadMissingFileThrows) {
  EXPECT_THROW(load_data_store("/nonexistent/path/store.ppds", small_bloom()),
               std::runtime_error);
}

TEST(Persistence, PublishAsRejectsDuplicates) {
  DataStore store(1, small_bloom());
  store.publish_as(5, wrap_text_as_xml("five", "content"));
  EXPECT_THROW(store.publish_as(5, wrap_text_as_xml("again", "content")),
               std::invalid_argument);
  // And the counter advanced past the explicit id.
  const DocumentId next = store.publish_text("auto", "more");
  EXPECT_EQ(next.local, 6u);
}

}  // namespace
}  // namespace planetp::index
