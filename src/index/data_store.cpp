#include "index/data_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace planetp::index {

DataStore::DataStore(std::uint32_t peer_id, bloom::BloomParams bloom_params,
                     text::AnalyzerOptions analyzer_opts)
    : peer_id_(peer_id), analyzer_(analyzer_opts), counting_filter_(bloom_params) {}

DocumentId DataStore::publish(std::string xml_source) {
  return publish_as(next_local_id_, std::move(xml_source));
}

DocumentId DataStore::publish_as(std::uint32_t local_id, std::string xml_source) {
  const DocumentId id{peer_id_, local_id};
  if (docs_.contains(id)) {
    throw std::invalid_argument("DataStore::publish_as: local id already in use");
  }
  if (local_id >= next_local_id_) next_local_id_ = local_id + 1;
  Document doc = make_document(id, std::move(xml_source));

  const auto freqs = analyzer_.term_frequencies(doc.text);
  index_.add_document(id, freqs);

  std::vector<std::string> terms;
  terms.reserve(freqs.size());
  for (const auto& [term, freq] : freqs) {
    counting_filter_.insert(term);
    terms.push_back(term);
  }
  doc_terms_[id] = std::move(terms);
  docs_[id] = std::move(doc);
  ++filter_version_;
  return id;
}

DocumentId DataStore::publish_text(std::string_view title, std::string_view body) {
  return publish(wrap_text_as_xml(title, body));
}

bool DataStore::unpublish(DocumentId id) {
  auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  docs_.erase(it);
  index_.remove_document(id);
  auto terms_it = doc_terms_.find(id);
  if (terms_it != doc_terms_.end()) {
    for (const auto& term : terms_it->second) counting_filter_.remove(term);
    doc_terms_.erase(terms_it);
  }
  ++filter_version_;
  return true;
}

bool DataStore::republish(DocumentId id, std::string xml_source) {
  if (!docs_.contains(id)) return false;
  // Validate the new content before tearing the old version down.
  Document replacement = make_document(id, std::move(xml_source));

  unpublish(id);
  const auto freqs = analyzer_.term_frequencies(replacement.text);
  index_.add_document(id, freqs);
  std::vector<std::string> terms;
  terms.reserve(freqs.size());
  for (const auto& [term, freq] : freqs) {
    counting_filter_.insert(term);
    terms.push_back(term);
  }
  doc_terms_[id] = std::move(terms);
  docs_[id] = std::move(replacement);
  ++filter_version_;
  return true;
}

const Document* DataStore::document(DocumentId id) const {
  auto it = docs_.find(id);
  return it == docs_.end() ? nullptr : &it->second;
}

std::vector<DocumentId> DataStore::search_all_terms(std::string_view query) const {
  const auto terms = analyzer_.analyze(query);
  if (terms.empty()) return {};

  // Intersect postings, starting with the rarest term.
  std::vector<std::string> unique(terms.begin(), terms.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  std::sort(unique.begin(), unique.end(), [&](const std::string& a, const std::string& b) {
    return index_.document_frequency(a) < index_.document_frequency(b);
  });

  std::vector<DocumentId> result;
  bool first = true;
  for (const auto& term : unique) {
    const auto& plist = index_.postings(term);
    if (plist.empty()) return {};
    std::vector<DocumentId> docs_with_term;
    docs_with_term.reserve(plist.size());
    for (const Posting& p : plist) docs_with_term.push_back(p.doc);
    std::sort(docs_with_term.begin(), docs_with_term.end());
    if (first) {
      result = std::move(docs_with_term);
      first = false;
    } else {
      std::vector<DocumentId> merged;
      std::set_intersection(result.begin(), result.end(), docs_with_term.begin(),
                            docs_with_term.end(), std::back_inserter(merged));
      result = std::move(merged);
      if (result.empty()) return {};
    }
  }
  return result;
}

}  // namespace planetp::index
