#include "text/tokenizer.hpp"

namespace planetp::text {

std::vector<std::string> tokenize(std::string_view input, const TokenizerOptions& opts) {
  std::vector<std::string> out;
  for_each_token(input, opts, [&](std::string_view tok) { out.emplace_back(tok); });
  return out;
}

}  // namespace planetp::text
