/// Cross-module edge cases: empty inputs, degenerate communities, unusual
/// queries, and boundary conditions not covered by the per-module suites.

#include <gtest/gtest.h>

#include "core/community.hpp"
#include "search/distributed.hpp"
#include "search/ipf.hpp"
#include "text/analyzer.hpp"

namespace planetp {
namespace {

using core::Community;
using core::Node;
using core::NodeConfig;

NodeConfig small_config() {
  NodeConfig cfg;
  cfg.bloom.bits = 65536;
  return cfg;
}

TEST(EdgeCases, EmptyQueryReturnsNothing) {
  Community community(small_config());
  Node& a = community.create_node();
  a.publish_text("doc", "some content");
  EXPECT_TRUE(a.exhaustive_search("").hits.empty());
  EXPECT_TRUE(a.ranked_search("", 10).empty());
}

TEST(EdgeCases, StopWordOnlyQueryReturnsNothing) {
  Community community(small_config());
  Node& a = community.create_node();
  a.publish_text("doc", "the and of it");
  EXPECT_TRUE(a.exhaustive_search("the and of").hits.empty());
  EXPECT_TRUE(a.ranked_search("the of", 10).empty());
}

TEST(EdgeCases, SingleNodeCommunityWorks) {
  Community community(small_config());
  Node& solo = community.create_node();
  solo.publish_text("mine", "solitary narwhal studies");
  EXPECT_EQ(solo.exhaustive_search("narwhal").hits.size(), 1u);
  EXPECT_EQ(solo.ranked_search("narwhal", 5).size(), 1u);
}

TEST(EdgeCases, KLargerThanCorpus) {
  Community community(small_config());
  Node& a = community.create_node();
  Node& b = community.create_node();
  a.publish_text("one", "shared tapir content");
  b.publish_text("two", "more tapir content");
  const auto hits = a.ranked_search("tapir", 1000);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(EdgeCases, KZeroReturnsEmpty) {
  Community community(small_config());
  Node& a = community.create_node();
  a.publish_text("doc", "zero k query");
  EXPECT_TRUE(a.ranked_search("query", 0).empty());
}

TEST(EdgeCases, RepeatedQueryTermsCountOnce) {
  // "gossip gossip gossip" must rank like "gossip": IpfTable deduplicates.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("gossip");
  const std::vector<search::PeerFilter> views = {{1, &filter}};
  const search::IpfTable once({"gossip"}, views);
  const search::IpfTable thrice({"gossip", "gossip", "gossip"}, views);
  const auto ranked_once = search::rank_peers(once);
  const auto ranked_thrice = search::rank_peers(thrice);
  ASSERT_EQ(ranked_once.size(), 1u);
  ASSERT_EQ(ranked_thrice.size(), 1u);
  EXPECT_DOUBLE_EQ(ranked_once[0].rank, ranked_thrice[0].rank);
}

TEST(EdgeCases, Utf8BytesActAsSeparators) {
  // The tokenizer is ASCII-alnum-based; multibyte sequences split tokens
  // rather than corrupting them.
  text::Analyzer analyzer;
  const auto terms = analyzer.analyze("caf\xC3\xA9 r\xC3\xA9sum\xC3\xA9 plain");
  EXPECT_NE(std::find(terms.begin(), terms.end(), "plain"), terms.end());
  for (const auto& t : terms) {
    for (char c : t) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << t;
    }
  }
}

TEST(EdgeCases, VeryLongDocumentIndexes) {
  Community community(small_config());
  Node& a = community.create_node();
  std::string body;
  for (int i = 0; i < 20000; ++i) {
    body += "word" + std::to_string(i % 1500) + " ";
  }
  a.publish_text("long", body);
  EXPECT_EQ(a.exhaustive_search("word42").hits.size(), 1u);
}

TEST(EdgeCases, ManyDocumentsOnOnePeer) {
  Community community(small_config());
  Node& a = community.create_node();
  Node& searcher = community.create_node();
  for (int i = 0; i < 200; ++i) {
    a.publish_text("d" + std::to_string(i),
                   "bulk corpus document mentioning ibis number " + std::to_string(i));
  }
  EXPECT_EQ(searcher.exhaustive_search("ibis").hits.size(), 200u);
  EXPECT_EQ(searcher.ranked_search("ibis", 10).size(), 10u);
}

TEST(EdgeCases, UnpublishTwiceAndUnknownIds) {
  Community community(small_config());
  Node& a = community.create_node();
  const auto id = a.publish_text("doc", "content");
  EXPECT_TRUE(a.unpublish(id));
  EXPECT_FALSE(a.unpublish(id));
  EXPECT_FALSE(a.unpublish(core::DocumentId{a.id(), 9999}));
  EXPECT_FALSE(a.unpublish(core::DocumentId{77, 0}));  // someone else's doc
}

TEST(EdgeCases, OfflineSearcherStillSearchesLocally) {
  Community community(small_config());
  Node& a = community.create_node();
  community.create_node();
  a.publish_text("local", "offline heron notes");
  community.set_online(a.id(), false);
  // a's own store keeps working even while it is unreachable to others.
  EXPECT_EQ(a.exhaustive_search("heron").hits.size(), 1u);
}

TEST(EdgeCases, WholeCommunnityOfflineExceptSearcher) {
  Community community(small_config());
  Node& searcher = community.create_node();
  Node& b = community.create_node();
  Node& c = community.create_node();
  b.publish_text("bdoc", "elusive kakapo recordings");
  c.publish_text("cdoc", "more kakapo recordings");
  community.set_online(b.id(), false);
  community.set_online(c.id(), false);

  const auto result = searcher.exhaustive_search("kakapo");
  EXPECT_TRUE(result.hits.empty());
  EXPECT_EQ(result.offline_candidates.size(), 2u);
  EXPECT_TRUE(searcher.ranked_search("kakapo", 5).empty());
}

TEST(EdgeCases, PersistentQueryWithStopWordsOnly) {
  Community community(small_config());
  Node& a = community.create_node();
  int calls = 0;
  a.add_persistent_query("the of and", [&](const core::SearchHit&) { ++calls; });
  Node& b = community.create_node();
  b.publish_text("doc", "the quick fox");
  EXPECT_EQ(calls, 0);  // no effective terms: never fires
}

TEST(EdgeCases, DistributedSearchWithNoFilters) {
  search::DistributedSearchOptions opts;
  opts.k = 5;
  const auto result = search::tfipf_search(
      {"term"}, {}, [](std::uint32_t, const auto&) { return std::vector<search::ScoredDoc>{}; },
      opts);
  EXPECT_TRUE(result.docs.empty());
  EXPECT_TRUE(result.contacted.empty());
}

}  // namespace
}  // namespace planetp
