#include "gossip/messages.hpp"

#include <gtest/gtest.h>

namespace planetp::gossip {
namespace {

RumorPayload payload(PeerId origin, std::uint64_t version, bool with_filter,
                     std::uint32_t new_keys = 0) {
  RumorPayload p;
  p.origin = origin;
  p.version = version;
  p.address = "host:" + std::to_string(1000 + origin);
  p.link_class = origin % 2 ? LinkClass::kSlow : LinkClass::kFast;
  p.kind = EventKind::kFilterChange;
  p.key_count = 5000;
  if (with_filter) {
    FilterUpdate f;
    f.base_version = version - 1;
    f.key_count = 5000;
    f.new_keys = new_keys;
    p.filter = std::move(f);
  }
  return p;
}

TEST(SizeModel, Table2FilterAnchors) {
  // The linear model must pass (approximately) through Table 2's anchors:
  // 1000 keys -> 3000 bytes, 20000 keys -> 16000 bytes.
  SizeModel m;
  EXPECT_NEAR(static_cast<double>(m.filter_bytes(1000)), 3000.0, 30.0);
  EXPECT_NEAR(static_cast<double>(m.filter_bytes(20000)), 16000.0, 150.0);
  EXPECT_EQ(m.filter_bytes(0), 0u);
}

TEST(SizeModel, SummaryRequestIsHeaderOnly) {
  SizeModel m;
  EXPECT_EQ(wire_size(SummaryRequestMsg{}, m), m.header_bytes);
}

TEST(SizeModel, SummaryScalesWithDirectorySize) {
  SizeModel m;
  SummaryMsg msg;
  for (PeerId i = 0; i < 1000; ++i) msg.entries.push_back(PeerSummary{i, 1});
  EXPECT_EQ(wire_size(msg, m), m.header_bytes + 1000 * m.summary_entry_bytes);
}

TEST(SizeModel, RumorWithDiffPricedByNewKeys) {
  SizeModel m;
  RumorMsg msg;
  msg.rumors.push_back(payload(1, 2, true, 1000));
  const std::size_t size = wire_size(msg, m);
  EXPECT_NEAR(static_cast<double>(size),
              static_cast<double>(m.header_bytes + m.record_base_bytes) + 3000.0, 40.0);
}

TEST(SizeModel, RumorWithoutFilterIsSmall) {
  SizeModel m;
  RumorMsg msg;
  msg.rumors.push_back(payload(1, 2, false));
  EXPECT_EQ(wire_size(msg, m), m.header_bytes + m.record_base_bytes);
}

TEST(SizeModel, PiggybackIdsCostSixBytesEach) {
  SizeModel m;
  RumorMsg msg;
  msg.recent_ids = {{1, 1}, {2, 2}, {3, 3}};
  EXPECT_EQ(wire_size(msg, m), m.header_bytes + 3 * m.rumor_id_bytes);
}

TEST(SizeModel, DigestAndWantPricePerId) {
  SizeModel m;
  RumorDigestMsg digest;
  digest.ids = {{1, 1}, {2, 2}};
  digest.recent_ids = {{3, 3}};
  EXPECT_EQ(wire_size(Message{digest}, m), m.header_bytes + 3 * m.rumor_id_bytes);
  RumorWantMsg want;
  want.want = {{1, 1}};
  want.already_knew = {{2, 2}, {3, 3}};
  want.pull_ids = {{4, 4}};
  EXPECT_EQ(wire_size(Message{want}, m), m.header_bytes + 4 * m.rumor_id_bytes);
}

TEST(SizeModel, DeltaSummaryPricesChangedSetOnly) {
  SizeModel m;
  SummaryMsg msg;
  msg.base_token = 77;
  msg.entries = {{1, 10}, {2, 20}};
  msg.removed = {9};
  EXPECT_EQ(wire_size(Message{msg}, m), m.header_bytes + m.base_token_bytes +
                                            2 * m.summary_entry_bytes + m.removed_id_bytes);
}

TEST(SizeModel, TokenedSummaryRequestCarriesToken) {
  SizeModel m;
  SummaryRequestMsg req;
  req.base_token = 1234;
  EXPECT_EQ(wire_size(Message{req}, m), m.header_bytes + m.base_token_bytes);
}

TEST(SizeModel, RealFilterBytesOverrideModel) {
  SizeModel m;
  RumorMsg msg;
  RumorPayload p = payload(1, 2, true, 1000);
  p.filter->bits.assign(777, 0);  // live mode: real encoded bytes dominate
  msg.rumors.push_back(std::move(p));
  EXPECT_EQ(wire_size(msg, m), m.header_bytes + m.record_base_bytes + 777);
}

TEST(Messages, RumorRoundtrip) {
  RumorMsg msg;
  RumorPayload first = payload(1, 2, true, 42);
  first.filter->bits = {1, 2, 3};
  msg.rumors.push_back(std::move(first));
  msg.rumors.push_back(payload(7, 9, false));
  msg.recent_ids = {{3, 4}, {5, 6}};

  const auto bytes = encode_message(msg);
  const Message decoded = decode_message(bytes);
  const auto* out = std::get_if<RumorMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->rumors.size(), 2u);
  EXPECT_EQ(out->rumors[0].origin, 1u);
  EXPECT_EQ(out->rumors[0].version, 2u);
  EXPECT_EQ(out->rumors[0].address, "host:1001");
  ASSERT_TRUE(out->rumors[0].filter.has_value());
  EXPECT_EQ(out->rumors[0].filter->bits, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(out->rumors[0].filter->new_keys, 42u);
  EXPECT_FALSE(out->rumors[1].filter.has_value());
  EXPECT_EQ(out->recent_ids, msg.recent_ids);
}

TEST(Messages, RumorAckRoundtrip) {
  RumorAckMsg msg;
  msg.already_knew = {{1, 1}};
  msg.recent_ids = {{2, 3}, {4, 5}};
  msg.pull_ids = {{6, 7}};
  const Message decoded = decode_message(encode_message(msg));
  const auto* out = std::get_if<RumorAckMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->already_knew, msg.already_knew);
  EXPECT_EQ(out->recent_ids, msg.recent_ids);
  EXPECT_EQ(out->pull_ids, msg.pull_ids);
}

TEST(Messages, SummaryRoundtrip) {
  SummaryMsg msg;
  msg.push = true;
  msg.entries = {{1, 10}, {2, 20}};
  const Message decoded = decode_message(encode_message(msg));
  const auto* out = std::get_if<SummaryMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->push);
  ASSERT_EQ(out->entries.size(), 2u);
  EXPECT_EQ(out->entries[1].id, 2u);
  EXPECT_EQ(out->entries[1].version, 20u);
}

TEST(Messages, SummaryRequestRoundtrip) {
  const Message decoded = decode_message(encode_message(SummaryRequestMsg{}));
  EXPECT_NE(std::get_if<SummaryRequestMsg>(&decoded), nullptr);
}

TEST(Messages, PullRequestRoundtrip) {
  PullRequestMsg msg;
  msg.ids = {{9, 1}, {8, 2}};
  const Message decoded = decode_message(encode_message(msg));
  const auto* out = std::get_if<PullRequestMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->ids, msg.ids);
}

TEST(Messages, PullResponseRoundtrip) {
  PullResponseMsg msg;
  msg.rumors.push_back(payload(3, 4, true, 100));
  const Message decoded = decode_message(encode_message(msg));
  const auto* out = std::get_if<PullResponseMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->rumors.size(), 1u);
  EXPECT_EQ(out->rumors[0].id(), (RumorId{3, 4}));
}

TEST(Messages, SummaryRequestTokenRoundtrip) {
  SummaryRequestMsg req;
  req.base_token = 0xDEADBEEFCAFEull;
  const Message decoded = decode_message(encode_message(req));
  const auto* out = std::get_if<SummaryRequestMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->base_token, req.base_token);
}

TEST(Messages, DeltaSummaryRoundtrip) {
  SummaryMsg msg;
  msg.push = true;
  msg.base_token = 42;
  msg.entries = {{1, 10}, {2, 200000}};
  msg.removed = {7, 9};
  msg.rejoin_floor = 55;
  const Message decoded = decode_message(encode_message(msg));
  const auto* out = std::get_if<SummaryMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->push);
  EXPECT_EQ(out->base_token, 42u);
  ASSERT_EQ(out->entries.size(), 2u);
  EXPECT_EQ(out->entries[1].version, 200000u);
  EXPECT_EQ(out->removed, msg.removed);
  EXPECT_EQ(out->rejoin_floor, 55u);
}

TEST(Messages, RumorDigestRoundtrip) {
  RumorDigestMsg msg;
  msg.ids = {{1, 2}, {300, 1 << 20}};
  msg.recent_ids = {{5, 6}};
  const Message decoded = decode_message(encode_message(msg));
  const auto* out = std::get_if<RumorDigestMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->ids, msg.ids);
  EXPECT_EQ(out->recent_ids, msg.recent_ids);
}

TEST(Messages, RumorWantRoundtrip) {
  RumorWantMsg msg;
  msg.want = {{1, 2}};
  msg.already_knew = {{3, 4}, {5, 6}};
  msg.recent_ids = {{7, 8}};
  msg.pull_ids = {{9, 10}};
  const Message decoded = decode_message(encode_message(msg));
  const auto* out = std::get_if<RumorWantMsg>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->want, msg.want);
  EXPECT_EQ(out->already_knew, msg.already_knew);
  EXPECT_EQ(out->recent_ids, msg.recent_ids);
  EXPECT_EQ(out->pull_ids, msg.pull_ids);
}

TEST(Messages, EncodedSizeIsExactForEveryKind) {
  std::vector<Message> battery;
  {
    RumorMsg m;
    RumorPayload p = payload(1, 2, true, 42);
    p.filter->bits = {9, 8, 7, 6};
    m.rumors.push_back(std::move(p));
    m.rumors.push_back(payload(300, 1 << 20, false));  // multi-byte varints
    m.recent_ids = {{3, 4}, {5, 600}};
    battery.emplace_back(std::move(m));
  }
  battery.emplace_back(RumorAckMsg{{{1, 1}}, {{2, 3}}, {{6, 7}, {8, 9}}});
  battery.emplace_back(SummaryRequestMsg{});
  {
    SummaryMsg m;
    m.push = true;
    m.rejoin_floor = 1234567;
    m.entries = {{1, 10}, {2, 200000}};
    battery.emplace_back(std::move(m));
  }
  battery.emplace_back(PullRequestMsg{{{9, 1}, {8, 2}}});
  {
    PullResponseMsg m;
    m.rumors.push_back(payload(3, 4, true, 100));
    battery.emplace_back(std::move(m));
  }
  battery.emplace_back(SummaryRequestMsg{0x123456789ull});
  {
    SummaryMsg m;  // delta form: token + changed-set + removed ids
    m.push = false;
    m.base_token = 0xABCDEF;
    m.entries = {{4, 40}, {5, 1 << 21}};
    m.removed = {6, 7};
    m.rejoin_floor = 3;
    battery.emplace_back(std::move(m));
  }
  {
    RumorDigestMsg m;
    m.ids = {{1, 2}, {300, 1 << 20}};
    m.recent_ids = {{5, 6}};
    battery.emplace_back(std::move(m));
  }
  {
    RumorWantMsg m;
    m.want = {{1, 2}};
    m.already_knew = {{3, 4}, {5, 600}};
    m.recent_ids = {{7, 8}};
    m.pull_ids = {{9, 10}};
    battery.emplace_back(std::move(m));
  }
  for (std::size_t i = 0; i < battery.size(); ++i) {
    EXPECT_EQ(encode_message(battery[i]).size(), encoded_size(battery[i]))
        << message_name(battery[i]) << " (battery entry " << i << ")";
  }
}

TEST(Messages, SharedRumorEncodingIsReusedAndByteIdentical) {
  RumorPayload p = payload(1, 2, true, 42);
  p.filter->bits = {1, 2, 3};
  const RumorPtr shared = intern_rumor(p);

  // The same interned rumor carried by different messages is the same object
  // with the same lazily-built wire bytes.
  RumorMsg push;
  push.rumors.push_back(shared);
  PullResponseMsg pull;
  pull.rumors.push_back(shared);
  EXPECT_EQ(push.rumors.ptr(0).get(), pull.rumors.ptr(0).get());
  EXPECT_EQ(push.rumors.ptr(0)->wire().data(), pull.rumors.ptr(0)->wire().data());

  // Splicing the cached encoding must be byte-identical to encoding a freshly
  // interned copy of the same payload value.
  RumorMsg fresh;
  fresh.rumors.push_back(p);
  EXPECT_NE(fresh.rumors.ptr(0).get(), shared.get());
  EXPECT_EQ(encode_message(push), encode_message(fresh));

  // Re-gossip path: forwarding a decoded rumor by its interned handle
  // reproduces the original bytes exactly.
  const auto bytes = encode_message(push);
  Message decoded = decode_message(bytes);
  auto& in = std::get<RumorMsg>(decoded);
  RumorMsg forwarded;
  forwarded.rumors.push_back(in.rumors.ptr(0));
  EXPECT_EQ(encode_message(forwarded), bytes);
}

TEST(Messages, SummaryEntriesShareDirectorySnapshot) {
  auto snap = std::make_shared<std::vector<PeerSummary>>(
      std::vector<PeerSummary>{{1, 10}, {2, 20}});
  SummaryMsg msg;
  msg.entries = SummaryEntries(SummarySnapshot(snap));
  // Building the message did not copy the snapshot...
  EXPECT_EQ(&msg.entries.list(), snap.get());
  // ...and a builder-path append detaches instead of mutating it.
  msg.entries.push_back(PeerSummary{3, 30});
  EXPECT_EQ(snap->size(), 2u);
  EXPECT_EQ(msg.entries.size(), 3u);
}

TEST(Messages, UnknownTagThrows) {
  const std::vector<std::uint8_t> bogus = {0x7f};
  EXPECT_THROW(decode_message(bogus), std::exception);
}

TEST(Messages, TruncatedMessageThrows) {
  RumorMsg msg;
  msg.rumors.push_back(payload(1, 2, true, 42));
  auto bytes = encode_message(msg);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_message(bytes), std::exception);
}

// A frame advertising a huge id-list count with no bytes behind it must be
// rejected up front by ByteReader::count's remaining-bytes check, not
// trusted into a proportional allocation. One case per new message type,
// on every one of its id lists.

TEST(Messages, HostileCountInRumorDigestThrows) {
  // Tag 7 (RumorDigest) + varint count 0xFFFFFFF (4-byte varint), no ids.
  const std::vector<std::uint8_t> bogus = {7, 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_THROW(decode_message(bogus), std::exception);
  // Valid empty first list, hostile second (recent_ids).
  const std::vector<std::uint8_t> bogus2 = {7, 0x00, 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_THROW(decode_message(bogus2), std::exception);
}

TEST(Messages, HostileCountInRumorWantThrows) {
  // Tag 8 (RumorWant), hostile count at each of the four list positions.
  for (int lists_before = 0; lists_before < 4; ++lists_before) {
    std::vector<std::uint8_t> bogus = {8};
    for (int i = 0; i < lists_before; ++i) bogus.push_back(0x00);  // empty list
    bogus.insert(bogus.end(), {0xFF, 0xFF, 0xFF, 0x7F});
    EXPECT_THROW(decode_message(bogus), std::exception) << "list " << lists_before;
  }
}

TEST(Messages, HostileCountInDeltaSummaryThrows) {
  // Tag 4 (Summary), push=0, base_token=1 (delta form), hostile entry count.
  const std::vector<std::uint8_t> entries = {4, 0x00, 0x01, 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_THROW(decode_message(entries), std::exception);
  // Empty entry list, hostile removed-id count.
  const std::vector<std::uint8_t> removed = {4, 0x00, 0x01, 0x00, 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_THROW(decode_message(removed), std::exception);
}

TEST(Messages, TruncatedTokenedSummaryRequestThrows) {
  SummaryRequestMsg req;
  req.base_token = 0xFFFFFFFFFFull;
  auto bytes = encode_message(req);
  bytes.resize(bytes.size() - 1);  // cut the varint token short
  EXPECT_THROW(decode_message(bytes), std::exception);
}

TEST(Messages, MessageNames) {
  EXPECT_STREQ(message_name(Message{RumorMsg{}}), "Rumor");
  EXPECT_STREQ(message_name(Message{SummaryMsg{}}), "Summary");
  EXPECT_STREQ(message_name(Message{PullRequestMsg{}}), "PullRequest");
  EXPECT_STREQ(message_name(Message{RumorDigestMsg{}}), "RumorDigest");
  EXPECT_STREQ(message_name(Message{RumorWantMsg{}}), "RumorWant");
}

}  // namespace
}  // namespace planetp::gossip
