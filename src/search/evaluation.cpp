#include "search/evaluation.hpp"

#include <algorithm>

namespace planetp::search {

namespace {
std::size_t hits(const std::vector<ScoredDoc>& presented, const RelevantSet& relevant) {
  std::size_t n = 0;
  for (const ScoredDoc& d : presented) n += relevant.contains(d.doc) ? 1 : 0;
  return n;
}
}  // namespace

double recall(const std::vector<ScoredDoc>& presented, const RelevantSet& relevant) {
  if (relevant.empty()) return 1.0;
  return static_cast<double>(hits(presented, relevant)) /
         static_cast<double>(relevant.size());
}

double precision(const std::vector<ScoredDoc>& presented, const RelevantSet& relevant) {
  if (presented.empty()) return 1.0;
  return static_cast<double>(hits(presented, relevant)) /
         static_cast<double>(presented.size());
}

std::size_t best_peers_for_k(
    const RelevantSet& relevant, std::size_t k,
    const std::unordered_map<index::DocumentId, std::uint32_t, index::DocumentIdHash>&
        owner_of) {
  const std::size_t target = std::min(k, relevant.size());
  if (target == 0) return 0;

  // peer -> its uncovered relevant docs
  std::unordered_map<std::uint32_t, std::vector<index::DocumentId>> holdings;
  for (const index::DocumentId& doc : relevant) {
    auto it = owner_of.find(doc);
    if (it != owner_of.end()) holdings[it->second].push_back(doc);
  }

  RelevantSet covered;
  std::size_t peers = 0;
  while (covered.size() < target && !holdings.empty()) {
    // Pick the peer covering the most uncovered docs (ties: lowest id for
    // determinism).
    std::uint32_t best_peer = 0;
    std::size_t best_gain = 0;
    for (const auto& [peer, docs] : holdings) {
      std::size_t gain = 0;
      for (const auto& d : docs) gain += covered.contains(d) ? 0 : 1;
      if (gain > best_gain || (gain == best_gain && gain > 0 && peer < best_peer)) {
        best_gain = gain;
        best_peer = peer;
      }
    }
    if (best_gain == 0) break;
    ++peers;
    for (const auto& d : holdings[best_peer]) covered.insert(d);
    holdings.erase(best_peer);
  }
  return peers;
}

}  // namespace planetp::search
