#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gossip/messages.hpp"
#include "gossip/types.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

/// \file directory.hpp
/// A peer's local copy of the replicated global directory (§3). Holds one
/// PeerRecord per known member, applies versioned updates, tracks local
/// online/offline beliefs, and expires members marked offline continuously
/// for T_dead.
///
/// Two storage modes share one interface (docs/SCALE.md):
///  - classic: every record lives in the private hash map (joins, live mode);
///  - based: adopt_base() installs a shared immutable DirectoryBase and the
///    hash map becomes a small overlay of records that diverged from it.
///    Lookups fall through overlay -> tombstones -> binary search in the
///    base; mutations materialize the base record into the overlay first.
///    N simulated peers then share one copy of the converged directory, and
///    steady-state anti-entropy compares per-epoch deltas instead of full
///    summaries — O(changed records) per round, not O(peers).

namespace planetp::gossip {

class Directory {
 public:
  explicit Directory(PeerId self) : self_(self) {}

  PeerId self() const { return self_; }

  /// Insert or replace this peer's own record.
  void put_self(PeerRecord record);

  /// Reset this directory onto a shared converged snapshot: drops all local
  /// records/tombstones and makes \p base the storage for every record until
  /// it diverges. The caller's own record must be part of the base.
  void adopt_base(DirectoryBasePtr base);

  /// The shared base, or nullptr in classic mode.
  const DirectoryBasePtr& base() const { return base_; }

  /// Content token of the shared base (0 in classic mode). Advertised in
  /// SummaryRequestMsg; a replier whose token matches may answer with a
  /// delta-only SummaryMsg (delta summaries, docs/PROTOCOL.md).
  std::uint64_t base_token() const { return base_ == nullptr ? 0 : base_->token; }

  /// Apply a remote update. Returns true if it superseded local knowledge
  /// (version strictly newer or peer unknown). An applied update also sets
  /// the peer back online (§3: a rejoin rumor flips off-line beliefs).
  bool apply(const PeerRecord& record);

  /// Record lookup (nullptr when unknown). find_mutable callers may bump the
  /// version or complete the filter, but must not flip `online` — online
  /// transitions go through mark_offline/mark_online, which maintain the
  /// offline-record count behind the O(1) expire_dead fast path.
  const PeerRecord* find(PeerId id) const;
  PeerRecord* find_mutable(PeerId id);

  /// Local belief updates from communication outcomes; not gossiped.
  void mark_offline(PeerId id, TimePoint now);
  void mark_online(PeerId id);

  /// Consecutive query failures before a SUSPECT peer is marked offline.
  static constexpr std::uint32_t kSuspectThreshold = 3;

  /// Record a query-time failure against \p id (timeout or garbage reply,
  /// not gossiped). Each failure raises the peer's SUSPECT level, demoting
  /// it in rank_peers; at kSuspectThreshold the peer is marked offline so
  /// subsequent gossip rounds and queries skip it until it proves itself
  /// again (offline probe or a newer gossiped version). Returns the new
  /// suspicion level (0 when the peer is unknown).
  std::uint32_t record_query_failure(PeerId id, TimePoint now);

  /// A successful query contact clears any SUSPECT state on \p id.
  void record_query_success(PeerId id);

  /// Current SUSPECT level of \p id (0 when unknown or trusted).
  std::uint32_t suspicion(PeerId id) const;

  /// Drop every record that has been continuously offline for at least
  /// \p t_dead, assuming permanent departure. Returns the dropped ids.
  /// Each drop leaves a local tombstone: anti-entropy with peers that have
  /// not expired the record yet would otherwise resurrect it (it looks
  /// brand-new to us), flip it back online, and keep a departed peer's
  /// record bouncing around the community forever. Only a strictly newer
  /// version — an actual rejoin — clears the tombstone.
  std::vector<PeerId> expire_dead(TimePoint now, Duration t_dead);

  /// Version at which \p id was expired, if we hold a tombstone for it.
  std::optional<std::uint64_t> tombstone_version(PeerId id) const;

  /// Random peer believed online, excluding self; kInvalidPeer if none.
  PeerId random_online(Rng& rng) const;

  /// Random online peer of the given class, excluding self.
  PeerId random_online_of_class(Rng& rng, LinkClass cls) const;

  /// Random peer currently believed offline, excluding self; kInvalidPeer if
  /// none. Used to probe for peers that became reachable again (e.g. after a
  /// partition healed) without anyone rumoring about it.
  PeerId random_offline(Rng& rng) const;

  /// Directory summary for anti-entropy exchanges: one (id, version) entry
  /// per known record, sorted by id. Cached per mutation epoch — repeated
  /// calls between directory changes return the same shared snapshot, so a
  /// gossip round costs no summary rebuild and a SummaryMsg carries a
  /// pointer, not a copy. The snapshot is immutable; holders are unaffected
  /// by later directory mutations.
  SummarySnapshot summary() const;

  /// Summary for a SummaryMsg. Classic mode: the shared snapshot, as before.
  /// Based mode: a shared (base, delta) view — two pointer copies regardless
  /// of community size; a receiver sharing the base never materializes it.
  SummaryEntries summary_entries() const;

  /// This directory's changed-set relative to its base (based mode only).
  /// Cached per mutation epoch; rebuilt in O(overlay log N).
  std::shared_ptr<const SummaryDelta> delta() const;

  /// Mutation counter: bumped whenever the set of (id, version) pairs may
  /// have changed. Local-only belief updates (mark_offline, suspicion) do
  /// not bump it — they are invisible in summaries.
  std::uint64_t epoch() const { return epoch_; }

  /// How many times summary() actually rebuilt the snapshot (introspection
  /// for tests and the gossip_throughput bench).
  std::uint64_t summary_builds() const { return summary_builds_; }

  /// Disable the epoch cache: every summary() call rebuilds and
  /// newer_in/same_as fall back to per-entry probing — the pre-cache cost
  /// model. Only used by bench/gossip_throughput as its baseline mode.
  void set_summary_caching(bool enabled);

  /// Versions that \p remote has but we lack or hold older (what to pull).
  /// A merge-scan over our sorted snapshot when \p remote is sorted (the
  /// wire format always is — it is built from a snapshot); falls back to
  /// per-entry probing otherwise.
  std::vector<RumorId> newer_in(const std::vector<PeerSummary>& remote) const;

  /// True when \p remote and our summary match exactly (same peers, same
  /// versions) — the "same directory" test of the adaptive interval (§3).
  bool same_as(const std::vector<PeerSummary>& remote) const;

  /// SummaryEntries overloads — what the protocol calls on SummaryMsg
  /// receipt. When the remote summary is a view over the *same shared base*
  /// as ours, only the two deltas are compared/scanned (O(changed) instead
  /// of O(peers)); identical results to the full-list paths either way.
  std::vector<RumorId> newer_in(const SummaryEntries& remote) const;
  bool same_as(const SummaryEntries& remote) const;

  /// Delta-only summary compare (decoded delta-form SummaryMsg, live wire):
  /// \p entries / \p removed are the remote's changed-set against *our own*
  /// shared base — the caller has already verified the base tokens match.
  /// Same results as the full-list paths, in O(changed records).
  std::vector<RumorId> newer_in_delta(const std::vector<PeerSummary>& entries) const;
  bool same_as_delta(const std::vector<PeerSummary>& entries,
                     const std::vector<PeerId>& removed) const;

  /// Total summary entries examined by newer_in/same_as since construction —
  /// the O(changed)-rounds invariant is pinned against this counter.
  std::uint64_t merge_scan_entries() const { return merge_scan_entries_; }

  /// Reference implementations of newer_in/same_as via per-entry hash
  /// probes, independent of the snapshot cache. The property tests pin the
  /// merge-scan results against these; not used on the hot path.
  std::vector<RumorId> newer_in_probe(const std::vector<PeerSummary>& remote) const;
  bool same_as_probe(const std::vector<PeerSummary>& remote) const;

  /// Live record count (overlay-aware in based mode).
  std::size_t size() const { return base_ == nullptr ? records_.size() : size_; }
  std::size_t online_count() const;

  /// How many records diverged from the shared base (0 in classic mode);
  /// introspection for tests and bench/community_scale.
  std::size_t overlay_size() const { return base_ == nullptr ? 0 : records_.size(); }

  void for_each(const std::function<void(const PeerRecord&)>& fn) const;

 private:
  PeerId self_;
  std::unordered_map<PeerId, PeerRecord> records_;
  std::unordered_map<PeerId, std::uint64_t> tombstones_;  ///< expired id -> version
  // Flat id list kept in sync for O(1) random selection (classic mode).
  std::vector<PeerId> ids_;
  // Records currently believed offline. Lets the per-round expire_dead and
  // the offline probe skip their full scans in the steady state where
  // everyone is online, and makes online_count() O(1).
  std::size_t offline_count_ = 0;

  // Based mode: the shared converged snapshot, the ids known beyond it, and
  // the live-record count (base + extras - expired). records_ becomes the
  // divergence overlay; tombstones_ additionally hides expired base records.
  DirectoryBasePtr base_;
  std::vector<PeerId> extra_ids_;
  std::size_t size_ = 0;

  // Epoch-cached summary snapshot. `epoch_` advances on any mutation that can
  // change the (id, version) set; summary() rebuilds lazily when the cached
  // snapshot's epoch is stale. Mutable: summary() is logically const.
  std::uint64_t epoch_ = 1;
  mutable SummarySnapshot cached_summary_;
  mutable std::uint64_t cached_epoch_ = 0;
  mutable std::uint64_t summary_builds_ = 0;
  // Based mode: epoch-cached changed-set and the shared view wrapping it.
  mutable std::shared_ptr<const SummaryDelta> cached_delta_;
  mutable std::uint64_t cached_delta_epoch_ = 0;
  mutable std::shared_ptr<const SummaryView> cached_view_;
  mutable std::uint64_t cached_view_epoch_ = 0;
  mutable std::uint64_t merge_scan_entries_ = 0;
  bool summary_caching_ = true;

  void add_id(PeerId id);
  void remove_id(PeerId id);
  void bump_epoch() { ++epoch_; }
  /// Record lookup for local-only belief updates (online/suspicion): does
  /// not invalidate the summary cache, which only reflects (id, version).
  /// In based mode this materializes the shared record into the overlay.
  PeerRecord* lookup(PeerId id);
  /// Binary search the shared base (ignores tombstones; nullptr if absent).
  const PeerRecord* find_in_base(PeerId id) const;
  bool expired(PeerId id) const {
    return !tombstones_.empty() && tombstones_.find(id) != tombstones_.end();
  }
  /// Virtual flat index over all known ids: classic ids_, or base + extras.
  std::size_t id_universe() const;
  PeerId id_at(std::size_t i) const;
};

}  // namespace planetp::gossip
