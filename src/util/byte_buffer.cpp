#include "util/byte_buffer.hpp"

#include <cstring>
#include <stdexcept>

namespace planetp {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  raw(data);
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) throw std::out_of_range("ByteReader: truncated message");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::size_t ByteReader::count(std::size_t min_elem_bytes) {
  const std::uint64_t n = varint();
  if (n > remaining() / (min_elem_bytes == 0 ? 1 : min_elem_bytes)) {
    throw std::out_of_range("ByteReader: list count exceeds remaining bytes");
  }
  return static_cast<std::size_t>(n);
}

std::vector<std::uint8_t> ByteReader::bytes() {
  const std::size_t n = static_cast<std::size_t>(varint());
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const std::size_t n = static_cast<std::size_t>(varint());
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
  pos_ += n;
  return out;
}

}  // namespace planetp
