#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

/// \file hash_ring.hpp
/// The consistent-hashing ring of the information brokerage service (§4):
/// "each active member chooses a unique broker ID from a predetermined range
/// (0 to maxID). Then, all members arrange themselves into a ring using
/// their IDs. To map a key to a broker, we compute the hash H of the key.
/// Then, we send the snippet and key to the broker whose ID makes it the
/// least successor to H mod maxID on the ring."

namespace planetp::broker {

using NodeId = std::uint32_t;
using RingPoint = std::uint64_t;

class HashRing {
 public:
  /// maxID of the paper; ring positions live in [0, max_id).
  explicit HashRing(RingPoint max_id = RingPoint{1} << 32) : max_id_(max_id) {}

  /// Add \p node at ring position \p point (its broker ID). Returns false if
  /// the position is already taken (IDs must be unique).
  bool add(NodeId node, RingPoint point);

  /// Derive a broker ID for \p node deterministically from its identity and
  /// add it, probing successive positions on collision. Returns the point.
  RingPoint add_by_hash(NodeId node);

  /// Remove a node; returns false if absent.
  bool remove(NodeId node);

  /// The broker responsible for \p key: least successor of hash(key) mod
  /// maxID. Returns nullopt when the ring is empty.
  std::optional<NodeId> responsible_for(std::string_view key) const;

  /// The first \p n distinct brokers clockwise from hash(key): the owner and
  /// its replica set. Fewer when the ring is smaller than n.
  std::vector<NodeId> replicas_for(std::string_view key, std::size_t n) const;

  /// Responsible broker for a raw ring point.
  std::optional<NodeId> successor_of(RingPoint point) const;

  /// The node that would become responsible for \p node's range if it left:
  /// its successor on the ring (nullopt when it is alone or absent).
  std::optional<NodeId> successor_node(NodeId node) const;

  /// Ring position of \p node, if present.
  std::optional<RingPoint> point_of(NodeId node) const;

  /// Hash a key onto the ring.
  RingPoint key_point(std::string_view key) const;

  std::size_t size() const { return by_point_.size(); }
  bool empty() const { return by_point_.empty(); }

  /// All (point, node) pairs in ring order; useful for balance tests.
  std::vector<std::pair<RingPoint, NodeId>> entries() const;

 private:
  RingPoint max_id_;
  std::map<RingPoint, NodeId> by_point_;
  std::map<NodeId, RingPoint> by_node_;
};

}  // namespace planetp::broker
