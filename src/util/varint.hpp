#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

/// \file varint.hpp
/// LEB128 variable-length integers for compact message encoding.

namespace planetp {

/// Append \p v to \p out as unsigned LEB128 (1-10 bytes).
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Encoded byte length of \p v as unsigned LEB128 (1-10 bytes). Lets writers
/// pre-size output buffers exactly.
inline constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Decode an unsigned LEB128 integer starting at \p pos; advances pos.
inline std::uint64_t get_varint(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    if (pos >= size) throw std::out_of_range("get_varint: truncated");
    const std::uint8_t b = data[pos++];
    if (shift >= 63 && (b & 0x7e) != 0) throw std::overflow_error("get_varint: overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

/// ZigZag mapping so small negative numbers stay short.
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace planetp
