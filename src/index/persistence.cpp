#include "index/persistence.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/byte_buffer.hpp"

namespace planetp::index {

namespace {
constexpr char kMagic[4] = {'P', 'P', 'D', 'S'};
}

std::vector<std::uint8_t> serialize_data_store(const DataStore& store) {
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  w.u32(kDataStoreFormatVersion);
  w.u32(store.peer_id());
  w.u32(store.next_local_id());

  const auto docs = store.documents();
  w.varint(docs.size());
  for (const DocumentId& id : docs) {
    const Document* doc = store.document(id);
    if (doc == nullptr) continue;  // defensive; documents() is authoritative
    w.u32(id.local);
    w.str(doc->xml_source);
  }
  return w.take();
}

DataStore deserialize_data_store(std::span<const std::uint8_t> bytes,
                                 bloom::BloomParams bloom_params,
                                 text::AnalyzerOptions analyzer_opts) {
  ByteReader r(bytes);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("data store snapshot: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kDataStoreFormatVersion) {
    throw std::runtime_error("data store snapshot: unsupported version " +
                             std::to_string(version));
  }
  const std::uint32_t peer_id = r.u32();
  const std::uint32_t next_local = r.u32();

  DataStore store(peer_id, bloom_params, analyzer_opts);
  const std::size_t count = static_cast<std::size_t>(r.varint());
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t local = r.u32();
    store.publish_as(local, r.str());
  }
  // Restore the id counter even past gaps left by unpublished documents so
  // post-restore publishes never reuse a previously seen id.
  store.reserve_local_ids(next_local);
  return store;
}

bool save_data_store(const DataStore& store, const std::string& path) {
  const auto bytes = serialize_data_store(store);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

DataStore load_data_store(const std::string& path, bloom::BloomParams bloom_params,
                          text::AnalyzerOptions analyzer_opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("data store snapshot: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize_data_store(bytes, bloom_params, analyzer_opts);
}

}  // namespace planetp::index
