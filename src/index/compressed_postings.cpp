#include "index/compressed_postings.hpp"

#include <algorithm>
#include <cmath>

#include "util/varint.hpp"

namespace planetp::index {

CompressedIndex CompressedIndex::build(const InvertedIndex& source) {
  CompressedIndex out;

  // Dense renumbering in ascending original-id order: postings within each
  // term can then be written sorted, and deltas stay small.
  out.docs_ = source.documents();
  out.doc_lengths_.reserve(out.docs_.size());
  for (std::uint32_t dense = 0; dense < out.docs_.size(); ++dense) {
    out.dense_of_.emplace(out.docs_[dense], dense);
    out.doc_lengths_.push_back(source.document_length(out.docs_[dense]));
  }

  source.for_each_term([&](const std::string& term) {
    const auto& plist = source.postings(term);
    // (dense id, freq), sorted by dense id for delta coding.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
    entries.reserve(plist.size());
    std::uint64_t cf = 0;
    for (const Posting& p : plist) {
      entries.emplace_back(out.dense_of_.at(p.doc), p.term_freq);
      cf += p.term_freq;
    }
    std::sort(entries.begin(), entries.end());

    TermEntry te;
    te.offset = static_cast<std::uint32_t>(out.blob_.size());
    te.doc_freq = static_cast<std::uint32_t>(entries.size());
    te.collection_freq = cf;
    std::uint32_t prev = 0;
    bool first = true;
    for (const auto& [dense, freq] : entries) {
      put_varint(out.blob_, first ? dense : dense - prev - 1);
      put_varint(out.blob_, freq);
      prev = dense;
      first = false;
    }
    te.length = static_cast<std::uint32_t>(out.blob_.size()) - te.offset;
    out.terms_.emplace(term, te);
  });
  return out;
}

CompressedIndex::PostingCursor::PostingCursor(const CompressedIndex* owner,
                                              const std::uint8_t* data, std::size_t size,
                                              std::uint32_t count)
    : owner_(owner), data_(data), size_(size), remaining_(count) {
  if (remaining_ > 0) {
    // Load the first posting.
    const std::uint32_t gap = static_cast<std::uint32_t>(get_varint(data_, size_, pos_));
    freq_ = static_cast<std::uint32_t>(get_varint(data_, size_, pos_));
    dense_ = gap;
    doc_ = owner_->docs_[dense_];
  }
}

void CompressedIndex::PostingCursor::next() {
  --remaining_;
  if (remaining_ == 0) return;
  const std::uint32_t gap = static_cast<std::uint32_t>(get_varint(data_, size_, pos_));
  freq_ = static_cast<std::uint32_t>(get_varint(data_, size_, pos_));
  dense_ += gap + 1;
  doc_ = owner_->docs_[dense_];
}

CompressedIndex::PostingCursor CompressedIndex::postings(std::string_view term) const {
  auto it = terms_.find(term);
  if (it == terms_.end()) return PostingCursor(this, nullptr, 0, 0);
  const TermEntry& te = it->second;
  return PostingCursor(this, blob_.data() + te.offset, te.length, te.doc_freq);
}

std::vector<Posting> CompressedIndex::decode(std::string_view term) const {
  std::vector<Posting> out;
  for (PostingCursor c = postings(term); !c.done(); c.next()) {
    out.push_back(Posting{c.doc(), c.term_freq()});
  }
  return out;
}

std::uint32_t CompressedIndex::document_frequency(std::string_view term) const {
  auto it = terms_.find(term);
  return it == terms_.end() ? 0 : it->second.doc_freq;
}

std::uint64_t CompressedIndex::collection_frequency(std::string_view term) const {
  auto it = terms_.find(term);
  return it == terms_.end() ? 0 : it->second.collection_freq;
}

void CompressedIndex::for_each_term(const std::function<void(std::string_view)>& fn) const {
  for (const auto& [term, te] : terms_) fn(term);
}

CompressedIndex::Builder::Builder(std::vector<DocumentId> docs,
                                  std::vector<std::uint32_t> lengths) {
  out_.docs_ = std::move(docs);
  out_.doc_lengths_ = std::move(lengths);
  for (std::uint32_t dense = 0; dense < out_.docs_.size(); ++dense) {
    out_.dense_of_.emplace(out_.docs_[dense], dense);
  }
}

void CompressedIndex::Builder::add_term(
    std::string_view term,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& postings) {
  if (postings.empty()) return;
  TermEntry te;
  te.offset = static_cast<std::uint32_t>(out_.blob_.size());
  te.doc_freq = static_cast<std::uint32_t>(postings.size());
  std::uint32_t prev = 0;
  bool first = true;
  for (const auto& [dense, freq] : postings) {
    put_varint(out_.blob_, first ? dense : dense - prev - 1);
    put_varint(out_.blob_, freq);
    te.collection_freq += freq;
    prev = dense;
    first = false;
  }
  te.length = static_cast<std::uint32_t>(out_.blob_.size()) - te.offset;
  out_.terms_.emplace(std::string(term), te);
}

std::uint32_t CompressedIndex::document_length(DocumentId doc) const {
  auto it = dense_of_.find(doc);
  return it == dense_of_.end() ? 0 : doc_lengths_[it->second];
}

std::size_t CompressedIndex::memory_bytes() const {
  std::size_t bytes = blob_.size();
  for (const auto& [term, te] : terms_) bytes += term.size() + sizeof(TermEntry);
  bytes += docs_.size() * sizeof(DocumentId);
  bytes += doc_lengths_.size() * sizeof(std::uint32_t);
  bytes += dense_of_.size() * (sizeof(DocumentId) + sizeof(std::uint32_t));
  return bytes;
}

std::vector<std::pair<DocumentId, double>> CompressedIndex::score(
    const std::unordered_map<std::string, double>& term_weights) const {
  // Accumulate over dense ids (a flat array beats a hash map here). Terms
  // are visited in lexicographic order — the same canonical order as
  // search::score_documents — so per-document sums are bitwise identical to
  // the uncompressed ranking.
  std::vector<double> acc(docs_.size(), 0.0);
  std::vector<bool> touched(docs_.size(), false);
  std::vector<std::pair<std::string_view, double>> sorted_terms;
  sorted_terms.reserve(term_weights.size());
  for (const auto& [term, weight] : term_weights) sorted_terms.emplace_back(term, weight);
  std::sort(sorted_terms.begin(), sorted_terms.end());
  for (const auto& [term, weight] : sorted_terms) {
    if (weight <= 0.0) continue;
    auto it = terms_.find(term);
    if (it == terms_.end()) continue;
    const TermEntry& te = it->second;
    PostingCursor c(this, blob_.data() + te.offset, te.length, te.doc_freq);
    for (; !c.done(); c.next()) {
      const auto dense = dense_of_.at(c.doc());
      // w_{D,t} = 1 + log f_{D,t} (same formula as search::doc_weight;
      // duplicated here to keep the index layer free of search deps).
      acc[dense] += (1.0 + std::log(static_cast<double>(c.term_freq()))) * weight;
      touched[dense] = true;
    }
  }
  std::vector<std::pair<DocumentId, double>> out;
  for (std::uint32_t dense = 0; dense < docs_.size(); ++dense) {
    if (!touched[dense]) continue;
    const double norm =
        doc_lengths_[dense] == 0 ? 0.0 : 1.0 / std::sqrt(double(doc_lengths_[dense]));
    out.emplace_back(docs_[dense], acc[dense] * norm);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace planetp::index
