#include "pfs/pfs.hpp"

#include <gtest/gtest.h>

namespace planetp::pfs {
namespace {

core::NodeConfig small_config() {
  core::NodeConfig cfg;
  cfg.bloom.bits = 65536;
  return cfg;
}

TEST(FileServer, UrlAndGetRoundtrip) {
  FileServer fs(3);
  const std::string url = fs.put("papers/gossip.txt", "epidemic algorithms");
  EXPECT_EQ(url, "pfs://3/papers/gossip.txt");
  EXPECT_EQ(fs.url_for("papers/gossip.txt"), url);
  EXPECT_EQ(fs.get(url), "epidemic algorithms");
  EXPECT_FALSE(fs.url_for("missing").has_value());
  EXPECT_FALSE(fs.get("pfs://3/missing").has_value());
  EXPECT_FALSE(fs.get("pfs://9/papers/gossip.txt").has_value());  // wrong server
}

TEST(FileServer, RemoveFile) {
  FileServer fs(1);
  fs.put("a.txt", "content");
  EXPECT_TRUE(fs.remove("a.txt"));
  EXPECT_FALSE(fs.remove("a.txt"));
  EXPECT_EQ(fs.file_count(), 0u);
}

class PfsFixture : public ::testing::Test {
 protected:
  PfsFixture()
      : community_(small_config()),
        alice_(community_.create_node()),
        bob_(community_.create_node()),
        // Zero staleness threshold: every open() re-runs the query, so tests
        // observe removals immediately (the community's virtual clock does
        // not advance in instant mode).
        alice_pfs_(alice_, /*stale_threshold=*/0),
        bob_pfs_(bob_, /*stale_threshold=*/0) {}

  core::Community community_;
  core::Node& alice_;
  core::Node& bob_;
  Pfs alice_pfs_;
  Pfs bob_pfs_;
};

TEST_F(PfsFixture, PublishedFileIsCommunitySearchable) {
  alice_pfs_.publish_file("notes/raft.txt", "raft consensus leader election");
  const auto result = bob_.exhaustive_search("raft consensus");
  ASSERT_EQ(result.hits.size(), 1u);
  EXPECT_EQ(result.hits[0].title, "notes/raft.txt");
}

TEST_F(PfsFixture, DirectoryListsMatchingFiles) {
  alice_pfs_.publish_file("a.txt", "gossip protocols for membership");
  alice_pfs_.publish_file("b.txt", "gossip about celebrities");
  alice_pfs_.publish_file("c.txt", "btrees and storage engines");

  const std::string dir = bob_pfs_.create_directory("gossip");
  const auto entries = bob_pfs_.open(dir);
  EXPECT_EQ(entries.size(), 2u);
}

TEST_F(PfsFixture, DirectoryUpdatesOnNewPublish) {
  const std::string dir = bob_pfs_.create_directory("lighthouse");
  EXPECT_TRUE(bob_pfs_.open(dir).empty());

  alice_pfs_.publish_file("keeper.txt", "the lighthouse keeper's journal");
  const auto entries = bob_pfs_.open(dir);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].url, "pfs://0/keeper.txt");
}

TEST_F(PfsFixture, SubdirectoryRefinesQuery) {
  alice_pfs_.publish_file("p1.txt", "distributed systems consensus paxos");
  alice_pfs_.publish_file("p2.txt", "distributed systems gossip epidemics");

  const std::string parent = bob_pfs_.create_directory("distributed systems");
  const std::string child = bob_pfs_.create_subdirectory(parent, "gossip");
  EXPECT_EQ(child, "/distributed systems/gossip");
  EXPECT_EQ(bob_pfs_.open(parent).size(), 2u);
  const auto refined = bob_pfs_.open(child);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(refined[0].url, "pfs://0/p2.txt");
}

TEST_F(PfsFixture, UnpublishedFileDisappearsOnRefresh) {
  alice_pfs_.publish_file("gone.txt", "vanishing albatross records");
  const std::string dir = bob_pfs_.create_directory("albatross");
  ASSERT_EQ(bob_pfs_.open(dir).size(), 1u);

  alice_pfs_.unpublish_file("gone.txt");
  // open() re-runs the query when the directory is stale or on the next
  // refresh; entries must drop the dead link.
  const auto entries = bob_pfs_.open(dir);
  EXPECT_TRUE(entries.empty());
}

TEST_F(PfsFixture, OwnNamespaceSeesOwnFiles) {
  alice_pfs_.publish_file("self.txt", "introspective squid essays");
  const std::string dir = alice_pfs_.create_directory("squid");
  EXPECT_EQ(alice_pfs_.open(dir).size(), 1u);
}

TEST_F(PfsFixture, DirectoriesListing) {
  bob_pfs_.create_directory("one");
  bob_pfs_.create_directory("two");
  const auto dirs = bob_pfs_.directories();
  EXPECT_EQ(dirs.size(), 2u);
}

TEST_F(PfsFixture, RemoveDirectoryStopsTracking) {
  const std::string dir = bob_pfs_.create_directory("meteor");
  EXPECT_TRUE(bob_pfs_.remove_directory(dir));
  EXPECT_FALSE(bob_pfs_.remove_directory(dir));
  alice_pfs_.publish_file("m.txt", "meteor shower schedule");
  EXPECT_TRUE(bob_pfs_.open(dir).empty());  // unknown directory now
}

TEST_F(PfsFixture, FileContentServedByUrl) {
  const std::string url = alice_pfs_.publish_file("data.txt", "payload bytes here");
  EXPECT_EQ(alice_pfs_.file_server().get(url), "payload bytes here");
}


TEST_F(PfsFixture, UpdatedFileMatchesNewQueries) {
  alice_pfs_.publish_file("draft.txt", "early thoughts about nothing");
  const std::string dir = bob_pfs_.create_directory("pelican");
  EXPECT_TRUE(bob_pfs_.open(dir).empty());

  ASSERT_TRUE(alice_pfs_.update_file("draft.txt", "notes on pelican migration"));
  ASSERT_EQ(bob_pfs_.open(dir).size(), 1u);

  // And the old content no longer matches.
  const std::string old_dir = bob_pfs_.create_directory("thoughts");
  EXPECT_TRUE(bob_pfs_.open(old_dir).empty());
}

TEST_F(PfsFixture, UpdateUnknownFileFails) {
  EXPECT_FALSE(alice_pfs_.update_file("never-published.txt", "content"));
}

}  // namespace
}  // namespace planetp::pfs
