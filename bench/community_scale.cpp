/// \file community_scale.cpp
/// Community-size scaling (docs/SCALE.md): converged communities at 5k, 25k
/// and 100k simulated peers absorbing a stream of filter-change events, with
/// the shared-base directory (one immutable snapshot community-wide),
/// O(changed) summary compares, and chunk-sharded parallel round stepping.
///
/// Reports, per community size: wall-clock gossip rounds/sec, convergence
/// time of the injected events (simulated seconds), peak process RSS (VmHWM
/// — sizes run ascending so the peak attributes to the size that set it),
/// and the average directory entries scanned per executed round (the
/// O(changed) evidence: it must stay flat as N grows 20x).
///
/// Emits BENCH_community_scale.json. Built-in gates:
///   1. every injected event converges and spot-checked directories agree;
///   2. peak RSS stays under 10% of the decoded cost model — N peers each
///      holding a private copy of N records (sizeof(PeerRecord) each), the
///      pre-shared-base design — with a 256 MB floor for small runs;
///   3. entries scanned per round is N-independent: <= 8*events + 16;
///   4. with --baseline <json>: rounds/s must stay above half the recorded
///      value and peak RSS below twice the recorded value per size.
/// Usage: community_scale [--quick] [--baseline <file>]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/mem_sampler.hpp"
#include "sim/community.hpp"

using namespace planetp;
using namespace planetp::sim;

namespace {

struct ScaleResult {
  std::size_t peers = 0;
  std::size_t events = 0;
  double wall_s = 0.0;
  std::uint64_t rounds = 0;
  double rounds_per_sec = 0.0;
  std::size_t converged_events = 0;
  double max_converge_s = 0.0;  ///< slowest event, simulated seconds
  double scan_per_round = 0.0;  ///< directory entries scanned per round
  double rss_mb = 0.0;          ///< VmRSS after the run
  double hwm_mb = 0.0;          ///< VmHWM (process peak, cumulative)
  bool consistent = false;
};

double wall_now_s() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count()) /
         1e9;
}

/// Spot consistency at scale: directories_consistent() is O(N^2), so compare
/// a sample of peers against peer 0's summary instead. With the shared base
/// each compare is O(changed), not O(N).
bool spot_consistent(SimCommunity& community, std::size_t peers) {
  const auto reference = community.protocol(0).directory().summary_entries();
  const std::size_t samples = peers < 64 ? peers : 64;
  const std::size_t stride = peers / (samples > 0 ? samples : 1);
  for (std::size_t i = 1; i < samples; ++i) {
    const auto id = static_cast<gossip::PeerId>(i * stride);
    if (!community.protocol(id).directory().same_as(reference)) return false;
  }
  return true;
}

ScaleResult run_size(std::size_t peers, std::size_t events) {
  SimConfig cfg;
  cfg.seed = 4242;
  cfg.parallel_round_tick = kSecond;
  cfg.parallel_threads = 0;  // hardware concurrency
  SimCommunity community(cfg);
  for (std::size_t i = 0; i < peers; ++i) {
    community.add_peer({link_speed::kLan45M, 1000});
  }
  const auto t = community.add_tracker("all", [](gossip::PeerId) { return true; });
  community.start_converged();

  const double t0 = wall_now_s();
  const std::uint64_t rounds0 = community.rounds_executed();

  TimePoint at = kMinute;
  community.run_until(at);
  for (std::size_t e = 0; e < events; ++e) {
    community.inject_filter_change(static_cast<gossip::PeerId>((e * 997) % peers), 100);
    at += 15 * kSecond;
    community.run_until(at);
  }
  community.set_tracking(false);
  community.run_until(at + 12 * kMinute);

  ScaleResult r;
  r.peers = peers;
  r.events = events;
  r.wall_s = wall_now_s() - t0;
  r.rounds = community.rounds_executed() - rounds0;
  r.rounds_per_sec = r.wall_s > 0.0 ? static_cast<double>(r.rounds) / r.wall_s : 0.0;
  const auto& durations = community.tracker(t).durations().samples();
  r.converged_events = durations.size();
  for (double d : durations) r.max_converge_s = std::max(r.max_converge_s, d);
  std::uint64_t scanned = 0;
  for (std::size_t id = 0; id < peers; ++id) {
    scanned += community.protocol(static_cast<gossip::PeerId>(id)).directory().merge_scan_entries();
  }
  r.scan_per_round = r.rounds > 0 ? static_cast<double>(scanned) / static_cast<double>(r.rounds) : 0.0;
  r.consistent = spot_consistent(community, peers);
  const benchutil::MemSample mem = benchutil::sample_memory();
  r.rss_mb = benchutil::to_mb(mem.vm_rss_kb);
  r.hwm_mb = benchutil::to_mb(mem.vm_hwm_kb);
  return r;
}

void print_result(const ScaleResult& r) {
  std::printf(
      "%6zu peers: %7.2f s wall   %9llu rounds   %9.0f rounds/s   "
      "%zu/%zu events converged (max %.0f sim-s)   %.2f scans/round   "
      "RSS %.0f MB (peak %.0f MB)%s\n",
      r.peers, r.wall_s, static_cast<unsigned long long>(r.rounds), r.rounds_per_sec,
      r.converged_events, r.events, r.max_converge_s, r.scan_per_round, r.rss_mb, r.hwm_mb,
      r.consistent ? "" : "   (INCONSISTENT)");
}

/// What the pre-shared-base design would decode: every peer holding its own
/// copy of every record.
double decoded_model_mb(std::size_t peers) {
  const double per_record = static_cast<double>(sizeof(gossip::PeerRecord));
  return static_cast<double>(peers) * static_cast<double>(peers) * per_record / (1024.0 * 1024.0);
}

double parse_key(const std::string& json, const std::string& key) {
  const std::size_t at = json.find("\"" + key + "\"");
  if (at == std::string::npos) return -1.0;
  const std::size_t colon = json.find(':', at);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  // Ascending, so VmHWM at each sample attributes to the size that set it.
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{2000, 5000} : std::vector<std::size_t>{5000, 25000, 100000};

  std::vector<ScaleResult> results;
  for (std::size_t n : sizes) {
    const std::size_t events = quick ? 4 : (n >= 100000 ? 6 : 12);
    results.push_back(run_size(n, events));
    print_result(results.back());
  }

  std::ostringstream os;
  os << "{\n  \"bench\": \"community_scale\",\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    os << "    {\"peers\": " << r.peers << ", \"events\": " << r.events
       << ", \"wall_s\": " << r.wall_s << ", \"rounds\": " << r.rounds
       << ", \"rounds_per_sec\": " << r.rounds_per_sec
       << ", \"converged_events\": " << r.converged_events
       << ", \"max_converge_s\": " << r.max_converge_s
       << ", \"scan_per_round\": " << r.scan_per_round << ", \"rss_mb\": " << r.rss_mb
       << ", \"hwm_mb\": " << r.hwm_mb << ", \"decoded_model_mb\": " << decoded_model_mb(r.peers)
       << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  for (const ScaleResult& r : results) {
    os << "  \"rps_" << r.peers << "\": " << r.rounds_per_sec << ",\n";
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "  \"rss_hwm_mb_" << results[i].peers << "\": " << results[i].hwm_mb
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "}\n";
  std::ofstream("BENCH_community_scale.json") << os.str();
  std::printf("wrote BENCH_community_scale.json\n");

  int rc = 0;
  for (const ScaleResult& r : results) {
    if (r.converged_events != r.events || !r.consistent) {
      std::fprintf(stderr, "FAIL: %zu peers: %zu/%zu events converged, consistent=%d\n", r.peers,
                   r.converged_events, r.events, r.consistent ? 1 : 0);
      rc = 1;
    }
    const double budget_mb = std::max(decoded_model_mb(r.peers) * 0.10, 256.0);
    if (r.hwm_mb > 0.0 && r.hwm_mb > budget_mb) {
      std::fprintf(stderr,
                   "FAIL: %zu peers: peak RSS %.0f MB exceeds %.0f MB "
                   "(10%% of the decoded cost model)\n",
                   r.peers, r.hwm_mb, budget_mb);
      rc = 1;
    }
    // The O(changed) property: work per round must not scale with N.
    const double scan_budget = 8.0 * static_cast<double>(r.events) + 16.0;
    if (r.scan_per_round > scan_budget) {
      std::fprintf(stderr, "FAIL: %zu peers: %.1f entries scanned per round (budget %.1f)\n",
                   r.peers, r.scan_per_round, scan_budget);
      rc = 1;
    }
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    for (const ScaleResult& r : results) {
      const double rps = parse_key(baseline, "rps_" + std::to_string(r.peers));
      if (rps > 0.0) {
        if (r.rounds_per_sec < rps / 2.0) {
          std::fprintf(stderr, "FAIL: %zu peers: %.0f rounds/s vs baseline %.0f (>2x drop)\n",
                       r.peers, r.rounds_per_sec, rps);
          rc = 1;
        } else {
          std::printf("baseline rps at %zu peers: %.0f vs recorded %.0f — ok\n", r.peers,
                      r.rounds_per_sec, rps);
        }
      }
      const double hwm = parse_key(baseline, "rss_hwm_mb_" + std::to_string(r.peers));
      if (hwm > 0.0 && r.hwm_mb > 0.0) {
        if (r.hwm_mb > hwm * 2.0) {
          std::fprintf(stderr, "FAIL: %zu peers: peak RSS %.0f MB vs baseline %.0f MB (>2x)\n",
                       r.peers, r.hwm_mb, hwm);
          rc = 1;
        } else {
          std::printf("baseline RSS at %zu peers: %.0f MB vs recorded %.0f MB — ok\n", r.peers,
                      r.hwm_mb, hwm);
        }
      }
    }
  }
  return rc;
}
