#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gossip/messages.hpp"
#include "gossip/stats.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

/// \file network.hpp
/// Link-level model for the simulator, parameterized per Table 2: per-peer
/// access-link bandwidths from 56 Kb/s to 45 Mb/s, serialized transfers on
/// both endpoints' links, and a fixed per-message CPU gossiping cost (5 ms).

namespace planetp::sim {

/// Bandwidths used throughout §7.2, in bits per second.
namespace link_speed {
inline constexpr double kModem56k = 56'000.0;
inline constexpr double kDsl512k = 512'000.0;
inline constexpr double kCable5M = 5'000'000.0;
inline constexpr double kEthernet10M = 10'000'000.0;
inline constexpr double kLan45M = 45'000'000.0;
}  // namespace link_speed

/// Draw a per-peer bandwidth from the Gnutella/Napster mixture measured by
/// Saroiu et al. and used for the paper's MIX scenarios: 9% 56 Kb/s, 21%
/// 512 Kb/s, 50% 5 Mb/s, 16% 10 Mb/s, 4% 45 Mb/s.
double sample_mix_bandwidth(Rng& rng);

/// The paper's fast/slow split for bandwidth-aware gossiping: fast is
/// 512 Kb/s or better.
bool is_fast_link(double bits_per_second);

/// Network cost/accounting model.
struct NetworkParams {
  Duration cpu_gossip_time = 5 * kMillisecond;  ///< Table 2: CPU gossiping time
  Duration base_latency = 5 * kMillisecond;     ///< propagation delay floor
  Duration bandwidth_bucket = 10 * kSecond;     ///< granularity of the bytes/s series
};

/// Traffic class, for separating event-propagation traffic (rumors, acks,
/// pulls) from background anti-entropy (summary exchanges). Fig 2b reports
/// the former; the LAN-AE baseline propagates *through* the latter.
enum class TrafficKind { kRumor = 0, kAntiEntropy = 1 };

/// Aggregate traffic statistics for an experiment window.
class NetworkStats {
 public:
  explicit NetworkStats(std::size_t num_peers = 0, Duration bucket = 10 * kSecond)
      : per_peer_bytes_(num_peers, 0), bucket_(bucket) {}

  void record(std::uint32_t sender, std::size_t bytes, TimePoint at,
              TrafficKind kind = TrafficKind::kRumor);

  /// Per-message-type accounting, keyed by gossip::Message variant index
  /// (bench/gossip_throughput splits bytes/round by type from this).
  void record_typed(std::size_t type_index, std::size_t bytes) {
    if (type_index < bytes_by_type_.size()) {
      bytes_by_type_[type_index] += bytes;
      ++messages_by_type_[type_index];
    }
  }

  /// Injected-fault accounting (see sim/faults.hpp). Drops include both the
  /// FaultPlan's rules and the legacy `message_drop_prob` shim, so loss
  /// experiments no longer under-report traffic.
  void record_dropped(bool partition) {
    ++dropped_messages_;
    if (partition) ++partition_dropped_messages_;
  }
  void record_duplicated(std::size_t copies) { duplicated_messages_ += copies; }
  void record_delayed() { ++delayed_messages_; }
  void record_reordered() { ++reordered_messages_; }

  /// Query/search RPC accounting (failure-aware retrieval, docs/SEARCH.md):
  /// first attempts, extra retry attempts, hedged duplicates, and contacts
  /// that never produced an answer.
  void record_query_sent() { ++query_rpcs_sent_; }
  void record_query_retried(std::uint64_t attempts) { query_rpcs_retried_ += attempts; }
  void record_query_hedged(std::uint64_t contacts) { query_rpcs_hedged_ += contacts; }
  void record_query_failed() { ++query_rpcs_failed_; }

  std::uint64_t dropped_messages() const { return dropped_messages_; }
  std::uint64_t partition_dropped_messages() const { return partition_dropped_messages_; }
  std::uint64_t duplicated_messages() const { return duplicated_messages_; }
  std::uint64_t delayed_messages() const { return delayed_messages_; }
  std::uint64_t reordered_messages() const { return reordered_messages_; }

  std::uint64_t query_rpcs_sent() const { return query_rpcs_sent_; }
  std::uint64_t query_rpcs_retried() const { return query_rpcs_retried_; }
  std::uint64_t query_rpcs_hedged() const { return query_rpcs_hedged_; }
  std::uint64_t query_rpcs_failed() const { return query_rpcs_failed_; }

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t rumor_bytes() const { return rumor_bytes_; }
  std::uint64_t anti_entropy_bytes() const { return total_bytes_ - rumor_bytes_; }
  std::uint64_t total_messages() const { return total_messages_; }
  const std::vector<std::uint64_t>& per_peer_bytes() const { return per_peer_bytes_; }

  /// Bytes / messages sent per gossip::Message variant index.
  const std::array<std::uint64_t, gossip::kMessageTypeCount>& bytes_by_type() const {
    return bytes_by_type_;
  }
  const std::array<std::uint64_t, gossip::kMessageTypeCount>& messages_by_type() const {
    return messages_by_type_;
  }

  /// Community-wide dissemination counters (payload pushes vs. duplicates,
  /// digests, served wants — docs/PROTOCOL.md "Lazy dissemination").
  /// SimCommunity::stats() installs the cumulative aggregate across every
  /// peer's Protocol on each access; the reported value is relative to the
  /// last reset(), like every other counter here.
  void set_gossip_stats(gossip::GossipStats cumulative) {
    gossip_cumulative_ = cumulative;
    cumulative -= gossip_baseline_;
    gossip_stats_ = cumulative;
  }
  const gossip::GossipStats& gossip_stats() const { return gossip_stats_; }

  /// (bucket start seconds, bytes in bucket) series for Fig 4c-style plots.
  std::vector<std::pair<double, std::uint64_t>> bytes_over_time() const;

  /// Reset counters (e.g. after warm-up) without losing sizing.
  void reset();

 private:
  std::uint64_t total_bytes_ = 0;
  std::uint64_t rumor_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t dropped_messages_ = 0;
  std::uint64_t partition_dropped_messages_ = 0;
  std::uint64_t duplicated_messages_ = 0;
  std::uint64_t delayed_messages_ = 0;
  std::uint64_t reordered_messages_ = 0;
  std::uint64_t query_rpcs_sent_ = 0;
  std::uint64_t query_rpcs_retried_ = 0;
  std::uint64_t query_rpcs_hedged_ = 0;
  std::uint64_t query_rpcs_failed_ = 0;
  std::vector<std::uint64_t> per_peer_bytes_;
  std::array<std::uint64_t, gossip::kMessageTypeCount> bytes_by_type_{};
  std::array<std::uint64_t, gossip::kMessageTypeCount> messages_by_type_{};
  gossip::GossipStats gossip_stats_;
  gossip::GossipStats gossip_baseline_;
  gossip::GossipStats gossip_cumulative_;
  Duration bucket_;
  std::vector<std::uint64_t> buckets_;
  TimePoint origin_ = 0;
  bool origin_set_ = false;
};

/// Per-peer link state: models store-and-forward serialization on the
/// sender's uplink and the receiver's downlink. Both directions share one
/// access link per peer (DSL/modem links are the bottleneck the paper
/// studies, and gossip messages are small relative to link asymmetry).
class LinkModel {
 public:
  explicit LinkModel(NetworkParams params) : params_(params) {}
  LinkModel(std::vector<double> peer_bandwidths_bps, NetworkParams params);

  /// Register a peer's access link; ids are assigned densely in call order.
  void add_peer(double bandwidth_bps);

  /// Compute the delivery time of a \p bytes message from \p from to \p to
  /// starting at \p now, updating both links' busy horizons.
  TimePoint transfer(std::uint32_t from, std::uint32_t to, std::size_t bytes, TimePoint now);

  double bandwidth(std::uint32_t peer) const { return bandwidth_[peer]; }
  const NetworkParams& params() const { return params_; }

  /// Clear queued-busy state (between experiment phases).
  void reset_busy();

 private:
  std::vector<double> bandwidth_;
  std::vector<TimePoint> uplink_free_;
  std::vector<TimePoint> downlink_free_;
  NetworkParams params_;
};

}  // namespace planetp::sim
