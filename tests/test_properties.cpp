/// Property-style and robustness tests cutting across modules: protocol
/// convergence under randomized churn, decoder behaviour on corrupted and
/// random inputs, and adversarial compression patterns.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <tuple>

#include "gossip/messages.hpp"
#include "index/xml.hpp"
#include "net/framing.hpp"
#include "net/rpc.hpp"
#include "sim/community.hpp"
#include "util/golomb.hpp"
#include "util/rng.hpp"

namespace planetp {
namespace {

// ---------------------------------------------------------------------------
// Gossip convergence under randomized churn (the protocol's core guarantee)
// ---------------------------------------------------------------------------

class ChurnConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnConvergence, DirectoriesConvergeAfterRandomChurn) {
  const std::uint64_t seed = GetParam();
  sim::SimConfig cfg;
  cfg.seed = seed;
  sim::SimCommunity community(cfg);
  constexpr std::size_t kPeers = 25;
  for (std::size_t i = 0; i < kPeers; ++i) {
    community.add_peer({sim::link_speed::kLan45M, 500});
  }
  community.start_converged();
  community.run_until(2 * kMinute);

  // Random storm: offline/rejoin/filter-change events over 20 minutes.
  Rng rng(seed * 31 + 7);
  std::vector<bool> online(kPeers, true);
  for (int burst = 0; burst < 40; ++burst) {
    const auto id = static_cast<gossip::PeerId>(rng.below(kPeers));
    const TimePoint when = community.queue().now() + 20 * kSecond;
    community.run_until(when);
    switch (rng.below(3)) {
      case 0:
        if (online[id] && community.online_count() > 2) {
          community.go_offline(id);
          online[id] = false;
        }
        break;
      case 1:
        if (!online[id]) {
          community.rejoin(id, rng.chance(0.3) ? 100 : 0);
          online[id] = true;
        }
        break;
      default:
        if (online[id]) community.inject_filter_change(id, 50);
    }
  }
  // Bring everyone back and let the community settle.
  for (std::size_t i = 0; i < kPeers; ++i) {
    if (!online[i]) community.rejoin(static_cast<gossip::PeerId>(i), 0);
  }
  community.run_until(community.queue().now() + 2 * kHour);
  EXPECT_TRUE(community.directories_consistent()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnConvergence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Fault tolerance as a property: directory updates are versioned and
// idempotent, so duplicating and reordering traffic may change *when* the
// community converges but never *what* it converges to.
// ---------------------------------------------------------------------------

/// Fixed event script (filter changes, one offline/rejoin) under the given
/// fault plan; returns the converged directory as (id, version, key_count)
/// triples, asserting the community did converge.
std::vector<std::tuple<gossip::PeerId, std::uint64_t, std::uint32_t>> converged_directory(
    sim::FaultPlan faults) {
  sim::SimConfig cfg;
  cfg.seed = 4242;
  cfg.faults = std::move(faults);
  sim::SimCommunity community(cfg);
  constexpr std::size_t kPeers = 12;
  for (std::size_t i = 0; i < kPeers; ++i) {
    community.add_peer({sim::link_speed::kLan45M, 500});
  }
  community.start_converged();
  community.run_until(kMinute);
  community.inject_filter_change(0, 100);
  community.inject_filter_change(5, 50);
  community.run_until(5 * kMinute);
  community.go_offline(7);
  community.inject_filter_change(3, 25);
  community.run_until(15 * kMinute);
  community.rejoin(7, 10);
  community.run_until(2 * kHour);

  EXPECT_TRUE(community.directories_consistent());
  std::vector<std::tuple<gossip::PeerId, std::uint64_t, std::uint32_t>> out;
  community.protocol(0).directory().for_each([&](const gossip::PeerRecord& r) {
    out.emplace_back(r.id, r.version, r.key_count);
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FaultProperties, DuplicatingAndReorderingAnyPrefixPreservesFinalState) {
  const auto baseline = converged_directory({});
  ASSERT_EQ(baseline.size(), 12u);

  // Duplicate and reorder aggressively over growing prefixes of the run,
  // including the whole of it. Whatever the fault window, the converged
  // directory must be byte-for-byte the baseline.
  for (const TimePoint window_end :
       {10 * kMinute, 30 * kMinute, std::numeric_limits<TimePoint>::max()}) {
    sim::FaultPlan plan;
    plan.duplicate(sim::FaultScope::any(), {0, window_end}, 0.5, 0, 5 * kSecond)
        .reorder(sim::FaultScope::any(), {0, window_end}, 0.5, 0, 10 * kSecond);
    EXPECT_EQ(converged_directory(std::move(plan)), baseline)
        << "fault window ends at " << window_end;
  }
}

// ---------------------------------------------------------------------------
// Decoder robustness: corrupted inputs must throw, never crash or hang
// ---------------------------------------------------------------------------

TEST(DecoderBounds, HostileListCountsAreRejectedBeforeAllocation) {
  // A tiny message claiming a 2^40-element list must throw up front, not
  // reserve() terabytes (found by the fuzz tests under ASan, whose allocator
  // refuses what Linux overcommit would silently grant).
  ByteWriter ranked;
  ranked.u8(2);  // RankedResponse
  ranked.u64(1);
  ranked.varint(std::uint64_t{1} << 40);  // doc count
  EXPECT_THROW((void)net::decode_rpc(ranked.data()), std::out_of_range);

  ByteWriter summary;
  summary.u8(4);  // Summary
  summary.u8(0);  // push
  summary.varint(std::uint64_t{1} << 40);  // entry count
  EXPECT_THROW((void)gossip::decode_message(summary.data()), std::out_of_range);
}

class FuzzDecoders : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecoders, GossipMessageDecoderSurvivesRandomBytes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(200) + 1);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      const gossip::Message msg = gossip::decode_message(junk);
      (void)gossip::message_name(msg);  // decoded by luck: must be usable
    } catch (const std::exception&) {
      // rejected: fine
    }
  }
}

TEST_P(FuzzDecoders, GossipMessageDecoderSurvivesTruncations) {
  Rng rng(GetParam());
  gossip::RumorMsg msg;
  gossip::RumorPayload p;
  p.origin = 3;
  p.version = 9;
  p.address = "host:1234";
  gossip::FilterUpdate f;
  f.bits = {1, 2, 3, 4, 5, 6, 7, 8};
  f.key_count = 100;
  p.filter = std::move(f);
  msg.rumors.push_back(std::move(p));
  msg.recent_ids = {{1, 1}, {2, 2}};
  const auto bytes = gossip::encode_message(msg);

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      (void)gossip::decode_message(prefix);
    } catch (const std::exception&) {
    }
  }
}

TEST_P(FuzzDecoders, RpcDecoderSurvivesRandomBytes) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(150) + 1);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      (void)net::decode_rpc(junk);
    } catch (const std::exception&) {
    }
  }
}

TEST_P(FuzzDecoders, FrameDecoderSurvivesRandomStreams) {
  Rng rng(GetParam() ^ 0x1234);
  net::FrameDecoder decoder;
  bool dead = false;
  for (int chunk = 0; chunk < 50 && !dead; ++chunk) {
    std::vector<std::uint8_t> junk(rng.below(64) + 1);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    decoder.feed(junk);
    try {
      while (decoder.next().has_value()) {
      }
    } catch (const std::exception&) {
      dead = true;  // stream declared corrupt — the reactor would close it
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecoders, ::testing::Values(11, 22, 33, 44));

TEST(FuzzXml, MutatedDocumentsParseOrThrow) {
  const std::string base =
      R"(<doc title="t"><a href="x" type="text">hello &amp; goodbye</a><b>two</b></doc>)";
  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    const std::size_t edits = rng.below(4) + 1;
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0: mutated[pos] = static_cast<char>(rng.below(96) + 32); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, static_cast<char>(rng.below(96) + 32));
      }
    }
    try {
      const auto root = xml::parse(mutated);
      (void)root->all_text();  // whatever parsed must be traversable
    } catch (const std::exception&) {
    }
  }
}

TEST(FuzzXml, DeeplyNestedDocumentParses) {
  std::string doc;
  constexpr int kDepth = 500;
  for (int i = 0; i < kDepth; ++i) doc += "<n>";
  doc += "x";
  for (int i = 0; i < kDepth; ++i) doc += "</n>";
  const auto root = xml::parse(doc);
  EXPECT_EQ(root->all_text(), "x");
}

// ---------------------------------------------------------------------------
// Compression on adversarial bit patterns
// ---------------------------------------------------------------------------

TEST(GolombAdversarial, AlternatingBitsRoundtrip) {
  BitVector bits(10'000);
  for (std::size_t i = 0; i < bits.size(); i += 2) bits.set(i);
  EXPECT_EQ(decompress_bits(compress_bits(bits)), bits);
}

TEST(GolombAdversarial, DenseBlocksRoundtrip) {
  BitVector bits(10'000);
  for (std::size_t i = 2000; i < 4000; ++i) bits.set(i);
  for (std::size_t i = 9000; i < 10'000; ++i) bits.set(i);
  EXPECT_EQ(decompress_bits(compress_bits(bits)), bits);
}

TEST(GolombAdversarial, AllOnesRoundtrip) {
  BitVector bits(4096);
  for (std::size_t i = 0; i < bits.size(); ++i) bits.set(i);
  const auto c = compress_bits(bits);
  EXPECT_EQ(decompress_bits(c), bits);
  // All-ones is the worst case for gap coding but must stay bounded.
  EXPECT_LT(c.byte_size(), 4096u / 4);
}

TEST(GolombAdversarial, SingleBitAtEveryPosition) {
  for (std::size_t pos : {0u, 1u, 63u, 64u, 65u, 1000u, 4095u}) {
    BitVector bits(4096);
    bits.set(pos);
    EXPECT_EQ(decompress_bits(compress_bits(bits)), bits) << pos;
  }
}

}  // namespace
}  // namespace planetp
