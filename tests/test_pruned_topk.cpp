#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "index/compressed_postings.hpp"
#include "index/data_store.hpp"
#include "search/ranker.hpp"
#include "search/vector_model.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

/// Rank-safety property tests for the block-max pruned top-k driver
/// (docs/INDEX.md "Block-max pruning"). The contract under test: for every k,
/// the pruned result is byte-identical — same documents, same score BITS,
/// same tie-breaks — to exhaustive scoring, across all three entry points
/// (compressed_top_k, TfIdfRanker with an accelerator, SnapshotRanker over
/// live epochs with tombstones and unmerged segments). The large cases also
/// pin blocks_skipped > 0 so the pruning provably fired.

using namespace planetp;
using namespace planetp::index;
using namespace planetp::search;

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

using Freqs = std::unordered_map<std::string, std::uint32_t>;

void expect_bit_identical(const std::vector<ScoredDoc>& got,
                          const std::vector<ScoredDoc>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].doc, want[i].doc) << what << " rank " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i].score),
              std::bit_cast<std::uint64_t>(want[i].score))
        << what << " rank " << i << ": " << got[i].score << " vs " << want[i].score;
  }
}

/// Zipf-distributed corpus over vocabulary "w1".."w<vocab>": realistic
/// skew — a few very long posting lists (many blocks) and a long tail.
InvertedIndex zipf_index(Rng& rng, std::uint32_t ndocs, std::size_t vocab,
                         std::size_t words_per_doc) {
  const ZipfSampler zipf(vocab, 1.1);
  InvertedIndex idx;
  for (std::uint32_t d = 0; d < ndocs; ++d) {
    Freqs freqs;
    for (std::size_t w = 0; w < words_per_doc; ++w) {
      ++freqs["w" + std::to_string(zipf.sample(rng))];
    }
    idx.add_document({d % 5, d}, freqs);
  }
  return idx;
}

/// A query of \p nterms Zipf-drawn terms (duplicates collapse, so short
/// queries with popular terms are common — the pruning-friendly case).
std::vector<std::string> zipf_query(Rng& rng, const ZipfSampler& zipf, std::size_t nterms) {
  std::vector<std::string> terms;
  for (std::size_t t = 0; t < nterms; ++t) {
    terms.push_back("w" + std::to_string(zipf.sample(rng)));
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::unordered_map<std::string, double> idf_weights_for(const CompressedIndex& ci,
                                                        const std::vector<std::string>& terms) {
  std::unordered_map<std::string, double> weights;
  for (const std::string& t : terms) {
    weights[t] = idf(ci.num_documents(), ci.collection_frequency(t));
  }
  return weights;
}

/// The exhaustive reference: full scoring + truncate. compressed_top_k is
/// pinned byte-identical to this for every k.
std::vector<ScoredDoc> exhaustive_ref(const CompressedIndex& ci,
                                      const std::unordered_map<std::string, double>& weights,
                                      std::size_t k) {
  std::vector<ScoredDoc> out;
  for (const auto& [doc, score] : ci.score(weights)) out.push_back(ScoredDoc{doc, score});
  truncate_top_k(out, k);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry point 1: compressed_top_k vs CompressedIndex::score
// ---------------------------------------------------------------------------

TEST(PrunedTopK, CompressedTopKBitIdenticalToExhaustive) {
  Rng rng(0xB10C);
  const InvertedIndex src = zipf_index(rng, 6000, 800, 25);
  const CompressedIndex ci = CompressedIndex::build(src);
  const ZipfSampler zipf(800, 1.1);

  PruneStats stats;
  for (int q = 0; q < 30; ++q) {
    // Mix short head-heavy queries (2-4 terms) and long ones (6-10 terms).
    const std::size_t nterms = q % 2 == 0 ? 2 + rng.below(3) : 6 + rng.below(5);
    const auto terms = zipf_query(rng, zipf, nterms);
    const auto weights = idf_weights_for(ci, terms);
    for (const std::size_t k : {std::size_t{1}, std::size_t{10}, std::size_t{100}, kInf}) {
      expect_bit_identical(compressed_top_k(ci, weights, k, &stats),
                           exhaustive_ref(ci, weights, k), "compressed_top_k");
    }
  }
  // The large corpus + small k cases must actually skip blocks; k = inf must
  // fall back. Both paths were exercised.
  EXPECT_GT(stats.pruned_queries, 0u);
  EXPECT_GT(stats.prune_fallbacks, 0u);
  EXPECT_GT(stats.blocks_skipped, 0u);
  EXPECT_GT(stats.docs_evaluated, 0u);
}

TEST(PrunedTopK, CompressedTopKEdgeCases) {
  Rng rng(0xED6E);
  const InvertedIndex src = zipf_index(rng, 300, 50, 8);
  const CompressedIndex ci = CompressedIndex::build(src);

  // k = 0 returns nothing; absent terms and zero weights are ignored.
  std::unordered_map<std::string, double> weights{{"w1", 1.0}, {"absent", 1.0}, {"w2", 0.0}};
  EXPECT_TRUE(compressed_top_k(ci, weights, 0).empty());
  expect_bit_identical(compressed_top_k(ci, weights, 5), exhaustive_ref(ci, weights, 5),
                       "absent+zero-weight terms");

  // Query matching nothing at all.
  std::unordered_map<std::string, double> nohit{{"nope", 2.0}};
  EXPECT_TRUE(compressed_top_k(ci, nohit, 10).empty());

  // Empty index.
  const CompressedIndex empty = CompressedIndex::build(InvertedIndex{});
  EXPECT_TRUE(compressed_top_k(empty, weights, 10).empty());
}

// ---------------------------------------------------------------------------
// Entry point 2: TfIdfRanker with accelerator vs plain TfIdfRanker
// ---------------------------------------------------------------------------

TEST(PrunedTopK, TfIdfRankerAccelBitIdenticalToPlain) {
  Rng rng(0xACCE1);
  const InvertedIndex src = zipf_index(rng, 5000, 600, 20);
  const CompressedIndex ci = CompressedIndex::build(src);
  const ZipfSampler zipf(600, 1.1);

  const TfIdfRanker plain(src);
  const TfIdfRanker accel(src, &ci);

  PruneStats stats;
  for (int q = 0; q < 25; ++q) {
    auto terms = zipf_query(rng, zipf, 2 + rng.below(8));
    if (q % 5 == 0) terms.push_back("not-in-corpus");  // absent terms mid-query
    for (const std::size_t k : {std::size_t{1}, std::size_t{10}, std::size_t{100}, kInf}) {
      expect_bit_identical(accel.top_k(terms, k, &stats), plain.top_k(terms, k),
                           "TfIdfRanker accel");
    }
  }
  EXPECT_GT(stats.pruned_queries, 0u);
  EXPECT_GT(stats.blocks_skipped, 0u);
}

// ---------------------------------------------------------------------------
// Entry point 3: SnapshotRanker over live epochs
// ---------------------------------------------------------------------------

namespace {

/// Deterministic pseudo-word vocabulary that survives the analyzer (no
/// stopwords, no digits): syllable pairs like "kazo", "lumi", ...
std::vector<std::string> make_vocab(std::size_t n) {
  static const char* kSyl[] = {"ka", "lo", "mi", "zu", "ver", "tan", "pel", "dro",
                               "sia", "nor", "gat", "bex", "qui", "fam", "ryn", "tol"};
  constexpr std::size_t kSylCount = sizeof(kSyl) / sizeof(kSyl[0]);
  std::vector<std::string> vocab;
  vocab.reserve(n);
  for (std::size_t i = 0; vocab.size() < n; ++i) {
    std::string w = std::string(kSyl[i % kSylCount]) + kSyl[(i / kSylCount) % kSylCount] +
                    kSyl[(i / (kSylCount * kSylCount)) % kSylCount];
    vocab.push_back(std::move(w));
  }
  return vocab;
}

std::string zipf_body(Rng& rng, const ZipfSampler& zipf,
                      const std::vector<std::string>& vocab, std::size_t words) {
  std::string body;
  for (std::size_t w = 0; w < words; ++w) {
    if (w != 0) body += ' ';
    body += vocab[zipf.sample(rng) - 1];
  }
  return body;
}

/// Byte-identity of the pruned snapshot top-k against full snapshot scoring.
void verify_snapshot_pruned(const DataStore& store, Rng& rng, const ZipfSampler& zipf,
                            const std::vector<std::string>& vocab, PruneStats& stats) {
  const auto snap = store.snapshot();
  const SnapshotRanker ranker(*snap);
  for (int q = 0; q < 6; ++q) {
    std::string query = vocab[zipf.sample(rng) - 1];
    const std::size_t extra = rng.below(6);
    for (std::size_t t = 0; t < extra; ++t) query += ' ' + vocab[zipf.sample(rng) - 1];
    const auto analyzed = store.analyzer().analyze(query);
    const std::vector<std::string> terms(analyzed.begin(), analyzed.end());

    const auto weights = ranker.idf_weights(terms);
    auto full = score_snapshot(*snap, weights);
    for (const std::size_t k : {std::size_t{1}, std::size_t{10}, std::size_t{100}, kInf}) {
      auto want = full;
      truncate_top_k(want, k);
      expect_bit_identical(ranker.top_k(terms, k, &stats), want, "SnapshotRanker");
    }
  }
}

}  // namespace

TEST(PrunedTopK, SnapshotRankerLiveEpochsBitIdentical) {
  // Inline merges so the structural regimes are deterministic. The snapshot
  // crosses: no base at all (fallback), a freshly compacted block-structured
  // base (pruned), then pending segments + tombstones over that base —
  // publishes and removals mid-stream between every verification.
  EpochConfig cfg;
  cfg.background_merge = false;
  DataStore store(3, {}, {}, cfg);

  Rng rng(0x5EED);
  const std::vector<std::string> vocab = make_vocab(300);
  const ZipfSampler zipf(300, 1.1);

  PruneStats stats;
  std::vector<DocumentId> live;

  // Phase 1: small store, no compacted base yet — everything falls back.
  for (int d = 0; d < 60; ++d) {
    live.push_back(store.publish_text(vocab[d % vocab.size()], zipf_body(rng, zipf, vocab, 20)));
  }
  verify_snapshot_pruned(store, rng, zipf, vocab, stats);

  // Phase 2: grow to a corpus whose hot posting lists span many blocks,
  // then compact so the published base carries skip metadata everywhere.
  for (int d = 0; d < 2500; ++d) {
    live.push_back(store.publish_text(vocab[d % vocab.size()], zipf_body(rng, zipf, vocab, 30)));
  }
  store.compact();
  verify_snapshot_pruned(store, rng, zipf, vocab, stats);
  const std::uint64_t skipped_after_compact = stats.blocks_skipped;
  EXPECT_GT(skipped_after_compact, 0u);  // large case: pruning provably fired

  // Phase 3: removals over the base (tombstones the pruned scan must honor
  // per candidate) plus fresh publishes (unmerged segments seeded exactly).
  for (int step = 0; step < 200; ++step) {
    if (step % 3 != 0 && !live.empty()) {
      const std::size_t victim = rng.below(live.size());
      ASSERT_TRUE(store.unpublish(live[victim]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      live.push_back(store.publish_text(vocab[rng.below(vocab.size())],
                                        zipf_body(rng, zipf, vocab, 25)));
    }
  }
  verify_snapshot_pruned(store, rng, zipf, vocab, stats);
  EXPECT_GT(stats.blocks_skipped, skipped_after_compact);
  EXPECT_GT(stats.pruned_queries, 0u);
  EXPECT_GT(stats.prune_fallbacks, 0u);  // phase 1 + k = inf queries
}

// ---------------------------------------------------------------------------
// Concurrency: readers prune while the writer publishes (TSan-targeted; the
// name is matched by scripts/check.sh's race-test regex)
// ---------------------------------------------------------------------------

TEST(PrunedTopK, ConcurrentPrunedReadersWhileWriterMutates) {
  DataStore store(9);  // default config: background merges on
  Rng setup_rng(0xC0CC);
  const std::vector<std::string> vocab = make_vocab(200);
  const ZipfSampler zipf(200, 1.1);

  std::vector<DocumentId> initial;
  for (int d = 0; d < 1200; ++d) {
    initial.push_back(store.publish_text(vocab[d % vocab.size()],
                                         zipf_body(setup_rng, zipf, vocab, 25)));
  }
  store.compact();  // block-structured base for the readers to prune against

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_skipped{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&store, &stop, &total_skipped, &vocab, r] {
      Rng rng(0xF00D + static_cast<std::uint64_t>(r));
      const ZipfSampler qzipf(200, 1.1);
      PruneStats stats;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string query = vocab[qzipf.sample(rng) - 1];
        const std::size_t extra = rng.below(4);
        for (std::size_t t = 0; t < extra; ++t) query += ' ' + vocab[qzipf.sample(rng) - 1];
        const auto snap = store.snapshot();
        const SnapshotRanker ranker(*snap);
        const auto analyzed = store.analyzer().analyze(query);
        const std::vector<std::string> terms(analyzed.begin(), analyzed.end());
        const auto ranked = ranker.top_k(terms, 10, &stats);
        // Local invariant (full identity is pinned by the tests above; here
        // the point is racing the pruned read path against the writer).
        for (std::size_t i = 1; i < ranked.size(); ++i) {
          ASSERT_TRUE(ranks_before(ranked[i - 1], ranked[i]));
        }
      }
      total_skipped.fetch_add(stats.blocks_skipped, std::memory_order_relaxed);
    });
  }

  Rng wrng(0xDEAD);
  std::vector<DocumentId> live = initial;
  for (int step = 0; step < 250; ++step) {
    if (step % 4 == 0 && !live.empty()) {
      const std::size_t victim = wrng.below(live.size());
      store.unpublish(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      live.push_back(store.publish_text(vocab[wrng.below(vocab.size())],
                                        zipf_body(wrng, zipf, vocab, 20)));
    }
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(total_skipped.load(), 0u);  // readers really pruned while racing
}
