#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "index/data_store.hpp"
#include "search/ranker.hpp"

using namespace planetp;
using namespace planetp::index;
using namespace planetp::search;

namespace {

constexpr std::uint32_t kPeer = 7;

/// Small vocabulary so postings overlap heavily and removals shift IDF
/// inputs for live queries.
const char* kVocab[] = {"gossip", "bloom", "filter", "peer",   "index",  "query",
                        "rank",   "epoch", "merge",  "planet", "search", "term"};
constexpr std::size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

std::string make_body(std::mt19937_64& rng, std::size_t words) {
  std::string body;
  for (std::size_t w = 0; w < words; ++w) {
    if (w != 0) body += ' ';
    body += kVocab[rng() % kVocabSize];
  }
  return body;
}

/// Analyzed (stemmed) query terms, exactly what the rankers expect.
std::vector<std::string> analyzed(const DataStore& store, std::string_view query) {
  const auto terms = store.analyzer().analyze(query);
  return {terms.begin(), terms.end()};
}

/// Byte-identity check: same documents, same score BITS, same order.
void expect_identical_ranking(const std::vector<ScoredDoc>& snapshot_ranked,
                              const std::vector<ScoredDoc>& oracle_ranked) {
  ASSERT_EQ(snapshot_ranked.size(), oracle_ranked.size());
  for (std::size_t i = 0; i < snapshot_ranked.size(); ++i) {
    EXPECT_EQ(snapshot_ranked[i].doc, oracle_ranked[i].doc) << "rank position " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(snapshot_ranked[i].score),
              std::bit_cast<std::uint64_t>(oracle_ranked[i].score))
        << "rank position " << i << ": " << snapshot_ranked[i].score << " vs "
        << oracle_ranked[i].score;
  }
}

/// The sequential single-threaded oracle: a fresh store holding exactly the
/// live documents, published one by one. The headline contract says every
/// published epoch must rank byte-identically to this.
DataStore make_oracle(const std::unordered_map<std::uint32_t, std::string>& live_docs) {
  DataStore oracle(kPeer);
  // Ascending local id: any order gives identical scores (per-document sums
  // accumulate in lexicographic term order on every path), but a fixed one
  // keeps the oracle itself deterministic.
  std::vector<std::uint32_t> ids;
  ids.reserve(live_docs.size());
  for (const auto& [local, xml] : live_docs) ids.push_back(local);
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t local : ids) oracle.publish_as(local, live_docs.at(local));
  return oracle;
}

void verify_epoch_against_oracle(const DataStore& store,
                                 const std::unordered_map<std::uint32_t, std::string>& live_docs,
                                 std::mt19937_64& rng) {
  const auto snap = store.snapshot();
  const DataStore oracle = make_oracle(live_docs);
  ASSERT_EQ(snap->num_documents(), oracle.num_documents());

  // A handful of random queries per verification, mixing 1-3 vocabulary
  // terms, ranked both top-k and full.
  for (int q = 0; q < 4; ++q) {
    std::string query(kVocab[rng() % kVocabSize]);
    if (rng() % 2 == 0) query += std::string(" ") + kVocab[rng() % kVocabSize];
    if (rng() % 3 == 0) query += std::string(" ") + kVocab[rng() % kVocabSize];
    const std::vector<std::string> terms = analyzed(store, query);
    const std::size_t k = 1 + rng() % 8;

    const SnapshotRanker snap_ranker(*snap);
    const TfIdfRanker oracle_ranker(oracle.index());
    expect_identical_ranking(snap_ranker.top_k(terms, k), oracle_ranker.top_k(terms, k));

    // Full scoring with the oracle's own IDF weights must agree bitwise too
    // (the snapshot's exact statistics are what makes the weights equal).
    const auto weights = oracle_ranker.idf_weights(terms);
    const auto snap_weights = snap_ranker.idf_weights(terms);
    ASSERT_EQ(weights.size(), snap_weights.size());
    for (const auto& [term, w] : weights) {
      auto it = snap_weights.find(term);
      ASSERT_NE(it, snap_weights.end()) << term;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(w), std::bit_cast<std::uint64_t>(it->second))
          << term;
    }
    expect_identical_ranking(score_snapshot(*snap, weights),
                             score_documents(oracle.index(), weights));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Randomized interleavings vs. the sequential oracle
// ---------------------------------------------------------------------------

TEST(EpochSnapshot, RandomizedOpsMatchSequentialOracle) {
  // Inline merges with tiny thresholds: every structural regime — fresh
  // level-0 segments, coalesced tiers, merged bases, pending tombstones over
  // each — is crossed many times in one run.
  EpochConfig cfg;
  cfg.background_merge = false;
  cfg.coalesce_fanin = 3;
  cfg.merge_min_docs = 16;
  cfg.merge_base_fraction = 0.5;
  cfg.merge_tombstone_threshold = 5;
  DataStore store(kPeer, {}, {}, cfg);

  std::mt19937_64 rng(0xEA0C5EEDULL);
  std::unordered_map<std::uint32_t, std::string> live_docs;  // local id -> xml

  for (int step = 0; step < 120; ++step) {
    const std::uint64_t op = rng() % 10;
    if (op < 5 || live_docs.empty()) {
      // publish one document
      const std::string xml =
          wrap_text_as_xml("doc" + std::to_string(step), make_body(rng, 4 + rng() % 12));
      const DocumentId id = store.publish(std::string(xml));
      live_docs[id.local] = xml;
    } else if (op < 7) {
      // publish a small batch (sequential fallback path)
      std::vector<std::string> batch;
      const std::size_t n = 2 + rng() % 3;
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(wrap_text_as_xml("batch" + std::to_string(step) + "_" + std::to_string(i),
                                         make_body(rng, 4 + rng() % 12)));
      }
      std::vector<std::string> copies = batch;
      const std::vector<DocumentId> ids = store.publish_batch(std::move(copies));
      ASSERT_EQ(ids.size(), batch.size());
      for (std::size_t i = 0; i < ids.size(); ++i) live_docs[ids[i].local] = batch[i];
    } else {
      // remove a random live document
      std::vector<std::uint32_t> ids;
      ids.reserve(live_docs.size());
      for (const auto& [local, xml] : live_docs) ids.push_back(local);
      const std::uint32_t victim = ids[rng() % ids.size()];
      ASSERT_TRUE(store.unpublish(DocumentId{kPeer, victim}));
      live_docs.erase(victim);
    }
    if (step % 3 == 0) {
      verify_epoch_against_oracle(store, live_docs, rng);
    }
  }
  verify_epoch_against_oracle(store, live_docs, rng);

  // The run must actually have exercised the folding machinery.
  const EpochStats stats = store.epochs().stats();
  EXPECT_GT(stats.coalesces, 0u);
  EXPECT_GT(stats.merges_completed, 0u);
  EXPECT_GT(stats.tombstones_created, 0u);
}

// ---------------------------------------------------------------------------
// Deterministic counter pins
// ---------------------------------------------------------------------------

TEST(EpochSnapshot, EpochAndMergeCountersPinned) {
  EpochConfig cfg;
  cfg.background_merge = false;
  cfg.coalesce_fanin = 2;
  cfg.merge_min_docs = 4;
  cfg.merge_base_fraction = 0.5;
  cfg.merge_tombstone_threshold = 100;
  DataStore store(kPeer, {}, {}, cfg);

  // One epoch per commit, starting from the empty epoch 0.
  EXPECT_EQ(store.snapshot()->epoch(), 0u);
  std::vector<DocumentId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(store.publish_text("t" + std::to_string(i), "alpha beta gamma"));
    EXPECT_EQ(store.snapshot()->epoch(), static_cast<std::uint64_t>(i + 1));
  }

  // fanin=2 folds like a binary counter: publishes 2 and 4 coalesce (4 twice:
  // L0+L0 -> L1, then L1+L1 -> L2), and publish 4 reaches merge_min_docs.
  EpochStats stats = store.epochs().stats();
  EXPECT_EQ(stats.epochs_published, 4u);
  EXPECT_EQ(stats.segments_created, 4u);
  EXPECT_EQ(stats.coalesces, 3u);
  EXPECT_EQ(stats.merges_completed, 1u);
  EXPECT_EQ(stats.segments_merged, 1u);  // the single fully coalesced L2 segment
  EXPECT_EQ(stats.docs_merged, 4u);
  EXPECT_EQ(stats.tombstones_created, 0u);

  auto snap = store.snapshot();
  EXPECT_EQ(snap->segment_count(), 0u);  // everything folded into the base
  EXPECT_EQ(snap->tombstone_count(), 0u);
  ASSERT_NE(snap->base(), nullptr);
  EXPECT_EQ(snap->base()->num_documents(), 4u);

  // A removal is one epoch and one pending tombstone; with no pending docs
  // it must not trigger a merge.
  ASSERT_TRUE(store.unpublish(ids[1]));
  stats = store.epochs().stats();
  EXPECT_EQ(stats.epochs_published, 5u);
  EXPECT_EQ(stats.tombstones_created, 1u);
  EXPECT_EQ(stats.merges_completed, 1u);
  snap = store.snapshot();
  EXPECT_EQ(snap->epoch(), 5u);
  EXPECT_EQ(snap->num_documents(), 3u);
  EXPECT_EQ(snap->tombstone_count(), 1u);

  // The next merge consumes the tombstone and drops the dead postings.
  for (int i = 0; i < 4; ++i) store.publish_text("u" + std::to_string(i), "delta alpha");
  stats = store.epochs().stats();
  EXPECT_EQ(stats.merges_completed, 2u);
  EXPECT_EQ(stats.tombstones_merged, 1u);
  snap = store.snapshot();
  EXPECT_EQ(snap->tombstone_count(), 0u);
  EXPECT_EQ(snap->num_documents(), 7u);
  ASSERT_NE(snap->base(), nullptr);
  EXPECT_EQ(snap->base()->num_documents(), 7u);
}

// ---------------------------------------------------------------------------
// Removal visibility: the latent-bug regression
// ---------------------------------------------------------------------------

TEST(EpochSnapshot, ReaderHoldingOldSnapshotStillScoresRemovedDocument) {
  DataStore store(kPeer);
  const DocumentId kept = store.publish_text("kept", "alpha beta alpha");
  const DocumentId removed = store.publish_text("removed", "alpha gamma");

  const auto before = store.snapshot();
  const std::vector<std::string> terms = analyzed(store, "alpha");
  const auto ranked_before = SnapshotRanker(*before).top_k(terms, 10);
  ASSERT_EQ(ranked_before.size(), 2u);

  // The removal must not be visible mid-epoch: a reader that pinned the old
  // snapshot keeps scoring the removed document, bit-for-bit unchanged,
  // until it drops the snapshot.
  ASSERT_TRUE(store.unpublish(removed));
  const auto ranked_after = SnapshotRanker(*before).top_k(terms, 10);
  expect_identical_ranking(ranked_after, ranked_before);
  EXPECT_EQ(before->num_documents(), 2u);

  // A fresh snapshot (the next epoch) no longer sees it, and its ranking is
  // byte-identical to a store that never held the document.
  const auto after = store.snapshot();
  EXPECT_EQ(after->num_documents(), 1u);
  const auto ranked_new = SnapshotRanker(*after).top_k(terms, 10);
  ASSERT_EQ(ranked_new.size(), 1u);
  EXPECT_EQ(ranked_new[0].doc, kept);

  DataStore oracle(kPeer);
  oracle.publish_as(kept.local, wrap_text_as_xml("kept", "alpha beta alpha"));
  expect_identical_ranking(ranked_new, TfIdfRanker(oracle.index()).top_k(terms, 10));
}

// ---------------------------------------------------------------------------
// MixedWorkload: TSan-covered stress — 8 readers ranking live snapshots
// while a writer publishes/merges >= 2000 documents
// ---------------------------------------------------------------------------

TEST(MixedWorkloadStress, ConcurrentReadersSeeConsistentEpochs) {
  constexpr std::size_t kReaders = 8;
  constexpr std::size_t kDocs = 2000;
  constexpr std::size_t kRemoveEvery = 16;
  constexpr std::size_t kMaxEpochs = 2 * kDocs + 2;

  EpochConfig cfg;  // background merges on (the default), small enough to fire many times
  cfg.merge_min_docs = 128;
  cfg.merge_tombstone_threshold = 16;
  DataStore store(kPeer, {}, {}, cfg);

  // Every document carries the marker term exactly once, so a reader can
  // checksum an entire snapshot — base, segments, and tombstone liveness —
  // by walking one posting list. expected_* is indexed by epoch and written
  // by the writer *before* the commit that publishes that epoch; the
  // mutex-published snapshot pointer makes it visible to any reader that
  // can observe the epoch.
  static constexpr const char* kMarker = "zmarkerz";
  std::vector<std::uint64_t> expected_checksum(kMaxEpochs, 0);
  std::vector<std::uint64_t> expected_docs(kMaxEpochs, 0);

  std::atomic<bool> done{false};
  const std::vector<std::string> marker_terms = analyzed(store, kMarker);
  ASSERT_EQ(marker_terms.size(), 1u);
  const std::string marker = marker_terms[0];
  const std::vector<std::string> mixed_terms = analyzed(store, "gossip bloom zmarkerz");

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(0xC0FFEE00ULL + r);
      std::uint64_t iterations = 0;
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_relaxed) || iterations == 0) {
        ++iterations;
        const auto snap = store.snapshot();
        const std::uint64_t epoch = snap->epoch();
        ASSERT_LT(epoch, kMaxEpochs);
        // Epochs are monotone per reader: the writer only publishes forward.
        ASSERT_GE(epoch, last_epoch);
        last_epoch = epoch;

        // Torn-read detector: the marker posting list must reproduce this
        // epoch's exact live-document census.
        std::uint64_t checksum = 0;
        std::uint64_t count = 0;
        snap->for_each_posting(marker, [&](std::uint32_t slot, std::uint32_t freq) {
          checksum += static_cast<std::uint64_t>(snap->doc_at_slot(slot).local + 1) * freq;
          ++count;
        });
        ASSERT_EQ(count, expected_docs[epoch]) << "epoch " << epoch;
        ASSERT_EQ(checksum, expected_checksum[epoch]) << "epoch " << epoch;
        ASSERT_EQ(snap->num_documents(), expected_docs[epoch]);

        // And rank: exercises the full snapshot scoring path under TSan.
        const auto ranked = SnapshotRanker(*snap).top_k(mixed_terms, 10);
        for (std::size_t i = 1; i < ranked.size(); ++i) {
          ASSERT_TRUE(ranks_before(ranked[i - 1], ranked[i]));
        }
        if (rng() % 64 == 0) std::this_thread::yield();
      }
    });
  }

  // Writer: publish kDocs documents, removing an earlier one every
  // kRemoveEvery publishes. expected_* entries are written pre-commit.
  std::mt19937_64 rng(0xDEAD5EEDULL);
  std::uint64_t epoch = 0;
  std::uint64_t checksum = 0;
  std::unordered_map<std::uint32_t, std::string> live_docs;
  std::vector<std::uint32_t> live_ids;
  for (std::size_t i = 0; i < kDocs; ++i) {
    const std::string xml =
        wrap_text_as_xml("d" + std::to_string(i), make_body(rng, 3 + rng() % 6) + " zmarkerz");
    const std::uint32_t local = store.next_local_id();
    ++epoch;
    checksum += local + 1;
    expected_checksum[epoch] = checksum;
    expected_docs[epoch] = live_docs.size() + 1;
    const DocumentId id = store.publish(std::string(xml));
    ASSERT_EQ(id.local, local);
    live_docs[local] = xml;
    live_ids.push_back(local);

    if (i % kRemoveEvery == kRemoveEvery - 1) {
      const std::size_t pick = rng() % live_ids.size();
      const std::uint32_t victim = live_ids[pick];
      live_ids[pick] = live_ids.back();
      live_ids.pop_back();
      ++epoch;
      checksum -= victim + 1;
      expected_checksum[epoch] = checksum;
      expected_docs[epoch] = live_docs.size() - 1;
      ASSERT_TRUE(store.unpublish(DocumentId{kPeer, victim}));
      live_docs.erase(victim);
    }
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  // Quiesce and replay: the final epoch must rank byte-identically to the
  // sequential oracle over the surviving documents.
  store.epochs().wait_for_merges();
  const auto final_snap = store.snapshot();
  EXPECT_EQ(final_snap->epoch(), epoch);
  EXPECT_EQ(final_snap->num_documents(), live_docs.size());
  EXPECT_GT(store.epochs().stats().merges_completed, 0u);

  const DataStore oracle = make_oracle(live_docs);
  for (const char* word : kVocab) {
    const std::vector<std::string> terms = analyzed(store, std::string(word) + " zmarkerz");
    expect_identical_ranking(SnapshotRanker(*final_snap).top_k(terms, 20),
                             TfIdfRanker(oracle.index()).top_k(terms, 20));
  }
}
