#include "gossip/types.hpp"

namespace planetp::gossip {

RumorPayload payload_from_record(const PeerRecord& record, EventKind kind,
                                 std::optional<FilterUpdate> filter) {
  RumorPayload p;
  p.origin = record.id;
  p.version = record.version;
  p.address = record.address;
  p.link_class = record.link_class;
  p.kind = kind;
  p.key_count = record.key_count;
  p.filter = std::move(filter);
  return p;
}

}  // namespace planetp::gossip
