#include "pfs/pfs.hpp"

#include "index/xml.hpp"

namespace planetp::pfs {

Pfs::Pfs(core::Node& node, Duration stale_threshold)
    : node_(node), files_(node.id()), stale_threshold_(stale_threshold) {}

TimePoint Pfs::now() const {
  // Staleness runs on the community's virtual clock.
  return node_.community() != nullptr ? node_.community()->now() : 0;
}

std::string Pfs::publish_file(const std::string& path, std::string content) {
  const std::string url = files_.put(path, std::move(content));
  // Build the snippet: URL + pointer + the file's content for indexing.
  const auto got = files_.get(url);
  std::string xml = "<file title=\"" + xml::escape(path) + "\" href=\"" +
                    xml::escape(url) + "\" type=\"text\">" +
                    xml::escape(got.value_or("")) + "</file>";
  const core::DocumentId doc = node_.publish(std::move(xml));
  published_[path] = doc;
  return url;
}

bool Pfs::unpublish_file(const std::string& path) {
  auto it = published_.find(path);
  if (it == published_.end()) return false;
  node_.unpublish(it->second);
  published_.erase(it);
  files_.remove(path);
  return true;
}

bool Pfs::update_file(const std::string& path, std::string content) {
  auto it = published_.find(path);
  if (it == published_.end()) return false;
  const std::string url = files_.put(path, std::move(content));
  const auto got = files_.get(url);
  std::string xml = "<file title=\"" + xml::escape(path) + "\" href=\"" +
                    xml::escape(url) + "\" type=\"text\">" +
                    xml::escape(got.value_or("")) + "</file>";
  return node_.republish(it->second, std::move(xml));
}

std::optional<std::string> Pfs::extract_url(const std::string& xml) {
  try {
    const auto root = xml::parse(xml);
    std::string_view href = root->attr("href");
    if (!href.empty()) return std::string(href);
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

void Pfs::install_query(Directory& dir) {
  dir.query_handle = node_.add_persistent_query(
      dir.full_query, [this, path = dir.path](const core::SearchHit& hit) {
        auto it = dirs_.find(path);
        if (it == dirs_.end()) return;
        const auto url = extract_url(hit.xml);
        if (!url) return;
        it->second.entries[*url] = DirEntry{*url, hit.title, hit.doc};
        it->second.last_update = now();
      });
}

std::string Pfs::create_directory(const std::string& query) {
  const std::string path = "/" + query;
  if (dirs_.contains(path)) return path;
  Directory dir;
  dir.path = path;
  dir.full_query = query;
  auto [it, inserted] = dirs_.emplace(path, std::move(dir));
  install_query(it->second);
  return path;
}

std::string Pfs::create_subdirectory(const std::string& parent_path,
                                     const std::string& query) {
  auto parent_it = dirs_.find(parent_path);
  if (parent_it == dirs_.end()) return create_directory(query);
  const std::string path = parent_path + "/" + query;
  if (dirs_.contains(path)) return path;
  Directory dir;
  dir.path = path;
  dir.full_query = parent_it->second.full_query + " " + query;  // conjunction refinement
  auto [it, inserted] = dirs_.emplace(path, std::move(dir));
  install_query(it->second);
  return path;
}

void Pfs::refresh(Directory& dir) {
  // §6: re-run the full query to drop stale links (deleted files, or files
  // modified so they no longer match).
  auto result = node_.exhaustive_search(dir.full_query);
  std::map<std::string, DirEntry> fresh;
  for (const core::SearchHit& hit : result.hits) {
    const auto url = extract_url(hit.xml);
    if (url) fresh[*url] = DirEntry{*url, hit.title, hit.doc};
  }
  for (const core::SearchHit& hit : result.broker_hits) {
    const auto url = extract_url(hit.xml);
    if (url && !fresh.contains(*url)) fresh[*url] = DirEntry{*url, hit.title, hit.doc};
  }
  dir.entries = std::move(fresh);
  dir.last_update = now();
}

std::vector<DirEntry> Pfs::open(const std::string& path) {
  auto it = dirs_.find(path);
  if (it == dirs_.end()) return {};
  Directory& dir = it->second;
  if (dir.entries.empty() || now() - dir.last_update >= stale_threshold_) {
    refresh(dir);
  }
  std::vector<DirEntry> out;
  out.reserve(dir.entries.size());
  for (const auto& [url, entry] : dir.entries) out.push_back(entry);
  return out;
}

std::vector<std::string> Pfs::directories() const {
  std::vector<std::string> out;
  out.reserve(dirs_.size());
  for (const auto& [path, dir] : dirs_) out.push_back(path);
  return out;
}

bool Pfs::remove_directory(const std::string& path) {
  auto it = dirs_.find(path);
  if (it == dirs_.end()) return false;
  node_.remove_persistent_query(it->second.query_handle);
  dirs_.erase(it);
  return true;
}

}  // namespace planetp::pfs
