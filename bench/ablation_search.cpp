/// \file ablation_search.cpp
/// Search-side ablations on the Fig 6 workload:
///
///  1. the eq. 4 stopping-heuristic constants — how patience trades peers
///     contacted against recall (the paper notes its linear k-dependence
///     "may be too aggressive" past k=150; this quantifies that);
///  2. group-parallel contact (m peers at a time, §5.2's latency variant);
///  3. the §2 accuracy-for-storage trade-off: merging filters in groups
///     (CompactDirectory) shrinks directory memory but inflates the
///     candidate peer set.

#include <cstdio>
#include <cstring>

#include <chrono>

#include "index/compressed_postings.hpp"
#include "search/compact_directory.hpp"
#include "search/experiment.hpp"

using namespace planetp;
using namespace planetp::search;

namespace {

void stopping_ablation(const corpus::SynthCollection& collection,
                       const RetrievalSetup& setup) {
  std::puts("# stopping heuristic: patience = floor(base + N/div) + 2*floor(k/50), k=20");
  std::printf("  %-28s %8s %8s %10s\n", "variant", "recall", "prec", "contacted");
  struct Variant {
    const char* name;
    double base;
    double divisor;
  } variants[] = {
      {"impatient (0 + N/1000)", 0.0, 1000.0},
      {"paper (2 + N/300)", 2.0, 300.0},
      {"patient (4 + N/150)", 4.0, 150.0},
      {"very patient (8 + N/75)", 8.0, 75.0},
  };
  for (const auto& v : variants) {
    RetrievalOptions opts;
    opts.stopping.base = v.base;
    opts.stopping.community_divisor = v.divisor;
    const auto p = evaluate_at_k(collection, setup, 20, opts);
    std::printf("  %-28s %8.3f %8.3f %10.1f\n", v.name, p.ipf_recall, p.ipf_precision,
                p.ipf_peers);
  }
  std::puts("");
}

void group_ablation(const corpus::SynthCollection& collection,
                    const RetrievalSetup& setup) {
  std::puts("# group-parallel contact (m peers per step), k=20");
  std::printf("  %-10s %8s %10s\n", "m", "recall", "contacted");
  for (std::size_t m : {1u, 2u, 4u, 8u}) {
    RetrievalOptions opts;
    opts.group_size = m;
    const auto p = evaluate_at_k(collection, setup, 20, opts);
    std::printf("  %-10zu %8.3f %10.1f\n", m, p.ipf_recall, p.ipf_peers);
  }
  std::puts("");
}

void compaction_ablation(const corpus::SynthCollection& collection,
                         const RetrievalSetup& setup) {
  std::puts("# filter merging (accuracy-for-storage, §2): candidates per query vs memory");
  std::printf("  %-10s %12s %18s\n", "group", "memory(MB)", "avg candidates");
  for (std::size_t g : {1u, 2u, 4u, 8u, 16u}) {
    CompactDirectory dir(g);
    for (std::size_t i = 0; i < setup.peer_filters.size(); ++i) {
      dir.add_peer(static_cast<std::uint32_t>(i), setup.peer_filters[i]);
    }
    double total_candidates = 0;
    for (const auto& query : collection.queries) {
      total_candidates +=
          static_cast<double>(dir.candidates_any(query_term_strings(query)).size());
    }
    std::printf("  %-10zu %12.2f %18.1f\n", g,
                static_cast<double>(dir.memory_bytes()) / 1e6,
                total_candidates / static_cast<double>(collection.queries.size()));
  }
}

void compressed_index_comparison(const corpus::SynthCollection& collection,
                                 const RetrievalSetup& setup) {
  // The "Managing Gigabytes"-style read path: a compressed snapshot of the
  // global index vs the mutable hash-map index, same ranking results.
  std::puts("# compressed posting-list snapshot (read path)");
  const auto t0 = std::chrono::steady_clock::now();
  const index::CompressedIndex snapshot = index::CompressedIndex::build(setup.global_index);
  const auto build_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  // Rough footprint of the mutable index: postings + doc-length map.
  std::size_t postings = 0;
  setup.global_index.for_each_term([&](const std::string& term) {
    postings += setup.global_index.postings(term).size();
  });
  const std::size_t mutable_estimate =
      postings * (sizeof(index::Posting) + sizeof(void*)) +
      setup.global_index.num_documents() * 16;

  TfIdfRanker baseline(setup.global_index);
  double checked = 0, agreed = 0;
  for (const auto& query : collection.queries) {
    const auto terms = query_term_strings(query);
    const auto weights = baseline.idf_weights(terms);
    const auto a = search::score_documents(setup.global_index, weights);
    const auto b = snapshot.score(weights);
    checked += 1;
    if (a.size() == b.size() &&
        (a.empty() || (a[0].doc == b[0].first && std::abs(a[0].score - b[0].second) < 1e-9))) {
      agreed += 1;
    }
  }
  std::printf("  build: %lld ms for %zu docs / %zu terms\n",
              static_cast<long long>(build_ms), snapshot.num_documents(),
              snapshot.num_terms());
  std::printf("  memory: %.2f MB compressed vs ~%.2f MB mutable estimate\n",
              static_cast<double>(snapshot.memory_bytes()) / 1e6,
              static_cast<double>(mutable_estimate) / 1e6);
  std::printf("  ranking agreement on %d queries: %.0f%%\n",
              static_cast<int>(checked), 100.0 * agreed / checked);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const auto spec = quick ? corpus::preset_tiny() : corpus::preset_cacm();
  const auto collection = corpus::generate(spec);
  const std::size_t peers = quick ? 20 : 200;
  const RetrievalSetup setup =
      distribute_collection(collection, peers, corpus::PlacementOptions{});
  std::printf("Search ablations — %s over %zu peers\n\n", spec.name.c_str(), peers);

  stopping_ablation(collection, setup);
  group_ablation(collection, setup);
  compaction_ablation(collection, setup);
  std::puts("");
  compressed_index_comparison(collection, setup);
  return 0;
}
