#include <gtest/gtest.h>

#include <cmath>

#include "search/distributed.hpp"
#include "search/evaluation.hpp"
#include "search/experiment.hpp"
#include "search/ipf.hpp"
#include "search/ranker.hpp"
#include "search/vector_model.hpp"

namespace planetp::search {
namespace {

using index::DocumentId;
using index::InvertedIndex;
using Freqs = std::unordered_map<std::string, std::uint32_t>;

TEST(VectorModel, IdfFormula) {
  // IDF_t = log(1 + N/f_t)
  EXPECT_DOUBLE_EQ(idf(100, 10), std::log(11.0));
  EXPECT_DOUBLE_EQ(idf(100, 100), std::log(2.0));
  EXPECT_EQ(idf(100, 0), 0.0);
}

TEST(VectorModel, IpfFormula) {
  EXPECT_DOUBLE_EQ(ipf(400, 4), std::log(101.0));
  EXPECT_EQ(ipf(400, 0), 0.0);
}

TEST(VectorModel, DocWeight) {
  EXPECT_DOUBLE_EQ(doc_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(doc_weight(10), 1.0 + std::log(10.0));
  EXPECT_EQ(doc_weight(0), 0.0);
}

TEST(VectorModel, RareTermsWeighMore) {
  EXPECT_GT(idf(1000, 5), idf(1000, 500));
  EXPECT_GT(ipf(1000, 5), ipf(1000, 500));
}

TEST(Ranker, ScoreMatchesHandComputation) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"apple", 4}, {"pear", 1}});  // |D| = 5
  idx.add_document({0, 2}, Freqs{{"apple", 1}, {"plum", 3}});  // |D| = 4

  const std::unordered_map<std::string, double> weights = {{"apple", 2.0}};
  const auto scored = score_documents(idx, weights);
  ASSERT_EQ(scored.size(), 2u);

  const double s1 = (1.0 + std::log(4.0)) * 2.0 / std::sqrt(5.0);
  const double s2 = 1.0 * 2.0 / std::sqrt(4.0);
  EXPECT_EQ(scored[0].doc, (DocumentId{0, 1}));
  EXPECT_NEAR(scored[0].score, s1, 1e-12);
  EXPECT_NEAR(scored[1].score, s2, 1e-12);
}

TEST(Ranker, MultiTermAccumulates) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"a", 1}, {"b", 1}});  // matches both
  idx.add_document({0, 2}, Freqs{{"a", 1}, {"c", 1}});  // matches one
  const auto scored =
      score_documents(idx, {{"a", 1.0}, {"b", 1.0}});
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].doc, (DocumentId{0, 1}));
  EXPECT_GT(scored[0].score, scored[1].score);
}

TEST(Ranker, ZeroWeightTermsIgnored) {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"common", 1}});
  const auto scored = score_documents(idx, {{"common", 0.0}});
  EXPECT_TRUE(scored.empty());
}

TEST(Ranker, TfIdfTopKOrdersByRelevance) {
  InvertedIndex idx;
  // "rare" appears in one doc, "common" in all: querying both should rank
  // the rare-containing doc first.
  idx.add_document({0, 1}, Freqs{{"rare", 2}, {"common", 1}});
  idx.add_document({0, 2}, Freqs{{"common", 2}});
  idx.add_document({0, 3}, Freqs{{"common", 1}});

  TfIdfRanker ranker(idx);
  const auto top = ranker.top_k({"rare", "common"}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].doc, (DocumentId{0, 1}));
}

TEST(Ipf, TableCountsPeersWithTerm) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter f1(params), f2(params), f3(params);
  f1.insert("gossip");
  f2.insert("gossip");
  f2.insert("bloom");
  f3.insert("chord");

  const std::vector<PeerFilter> filters = {{1, &f1}, {2, &f2}, {3, &f3}};
  const IpfTable table({"gossip", "bloom", "nowhere"}, filters);
  EXPECT_EQ(table.peers_with("gossip").size(), 2u);
  EXPECT_EQ(table.peers_with("bloom").size(), 1u);
  EXPECT_TRUE(table.peers_with("nowhere").empty());
  EXPECT_DOUBLE_EQ(table.weight("gossip"), ipf(3, 2));
  EXPECT_DOUBLE_EQ(table.weight("bloom"), ipf(3, 1));
  EXPECT_EQ(table.weight("nowhere"), 0.0);
}

TEST(RankPeers, Equation3Ordering) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter both(params), one(params), none(params);
  both.insert("x");
  both.insert("y");
  one.insert("x");
  none.insert("z");

  const std::vector<PeerFilter> filters = {{1, &both}, {2, &one}, {3, &none}};
  const IpfTable table({"x", "y"}, filters);
  const auto ranked = rank_peers(table);
  // Peer 3 has no query term: omitted. Peer 1 holds both terms: first.
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].peer, 1u);
  EXPECT_EQ(ranked[1].peer, 2u);
  EXPECT_GT(ranked[0].rank, ranked[1].rank);
}

TEST(StoppingHeuristic, Equation4Values) {
  StoppingHeuristic h;
  // p = floor(2 + N/300) + 2*floor(k/50)
  EXPECT_EQ(h.patience(0, 10), 2u);
  EXPECT_EQ(h.patience(300, 10), 3u);
  EXPECT_EQ(h.patience(400, 20), 3u);
  EXPECT_EQ(h.patience(400, 50), 5u);
  EXPECT_EQ(h.patience(400, 100), 7u);
  EXPECT_EQ(h.patience(3000, 500), 32u);
}

TEST(DistributedSearch, SinglePeerEqualsLocalRanking) {
  // Degenerate community: TFxIPF over one peer must return exactly that
  // peer's ranked documents.
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"alpha", 3}});
  idx.add_document({0, 2}, Freqs{{"alpha", 1}, {"beta", 1}});
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("alpha");
  filter.insert("beta");

  const std::vector<PeerFilter> views = {{0, &filter}};
  DistributedSearchOptions opts;
  opts.k = 10;
  const auto result = tfipf_search(
      {"alpha"}, views,
      [&](std::uint32_t, const std::unordered_map<std::string, double>& w) {
        return score_documents(idx, w);
      },
      opts);
  ASSERT_EQ(result.docs.size(), 2u);
  EXPECT_EQ(result.contacted.size(), 1u);
  EXPECT_EQ(result.docs[0].doc, (DocumentId{0, 1}));
}

TEST(DistributedSearch, ContactsPeersInRankOrder) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter strong(params), weak(params);
  strong.insert("q1");
  strong.insert("q2");
  weak.insert("q1");
  const std::vector<PeerFilter> views = {{5, &weak}, {9, &strong}};

  std::vector<std::uint32_t> order;
  DistributedSearchOptions opts;
  opts.k = 5;
  tfipf_search(
      {"q1", "q2"}, views,
      [&](std::uint32_t peer, const auto&) {
        order.push_back(peer);
        return std::vector<ScoredDoc>{};
      },
      opts);
  ASSERT_GE(order.size(), 1u);
  EXPECT_EQ(order[0], 9u);  // both-terms peer ranked first
}

TEST(DistributedSearch, StopsAfterNonContributingStreak) {
  // 30 candidate peers all claim the term, but only the first returns
  // documents; the adaptive heuristic must stop long before 30 contacts.
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("term");
  std::vector<PeerFilter> views;
  views.reserve(30);
  for (std::uint32_t i = 0; i < 30; ++i) views.push_back({i, &filter});

  std::size_t contacts = 0;
  DistributedSearchOptions opts;
  opts.k = 5;
  const auto result = tfipf_search(
      {"term"}, views,
      [&](std::uint32_t peer, const auto& w) {
        ++contacts;
        std::vector<ScoredDoc> docs;
        if (peer == 0) {
          for (std::uint32_t d = 0; d < 5; ++d) docs.push_back({{0, d}, 1.0});
        }
        (void)w;
        return docs;
      },
      opts);
  const std::size_t patience = opts.stopping.patience(views.size(), opts.k);
  EXPECT_LE(contacts, 1 + patience + 1);
  EXPECT_EQ(result.docs.size(), 5u);
}

TEST(DistributedSearch, GroupContactIsEquivalentButBatched) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  std::vector<PeerFilter> views;
  for (std::uint32_t i = 0; i < 10; ++i) views.push_back({i, &filter});

  auto contact = [&](std::uint32_t peer, const auto&) {
    std::vector<ScoredDoc> docs;
    docs.push_back({{peer, 0}, 1.0 / (peer + 1.0)});
    return docs;
  };
  DistributedSearchOptions seq;
  seq.k = 3;
  DistributedSearchOptions par = seq;
  par.group_size = 4;
  const auto r1 = tfipf_search({"t"}, views, contact, seq);
  const auto r2 = tfipf_search({"t"}, views, contact, par);
  ASSERT_EQ(r1.docs.size(), r2.docs.size());
  for (std::size_t i = 0; i < r1.docs.size(); ++i) {
    EXPECT_EQ(r1.docs[i].doc, r2.docs[i].doc);
  }
  // The parallel variant may contact somewhat more peers (the §5.2 tradeoff).
  EXPECT_GE(r2.contacted.size(), r1.contacted.size());
}

TEST(DistributedSearch, MaxPeersCapRespected) {
  bloom::BloomParams params{65536, 2};
  bloom::BloomFilter filter(params);
  filter.insert("t");
  std::vector<PeerFilter> views;
  for (std::uint32_t i = 0; i < 20; ++i) views.push_back({i, &filter});
  DistributedSearchOptions opts;
  opts.k = 100;  // huge k: would contact everyone
  opts.max_peers = 4;
  const auto r = tfipf_search({"t"}, views,
                              [](std::uint32_t, const auto&) {
                                return std::vector<ScoredDoc>{};
                              },
                              opts);
  EXPECT_LE(r.contacted.size(), 4u);
}

TEST(Evaluation, RecallAndPrecision) {
  RelevantSet relevant = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  std::vector<ScoredDoc> presented = {{{0, 1}, 1.0}, {{0, 2}, 0.9}, {{0, 99}, 0.5}};
  EXPECT_DOUBLE_EQ(recall(presented, relevant), 0.5);
  EXPECT_NEAR(precision(presented, relevant), 2.0 / 3.0, 1e-12);
}

TEST(Evaluation, EdgeCases) {
  EXPECT_DOUBLE_EQ(recall({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(precision({}, {{0, 1}}), 1.0);
  EXPECT_DOUBLE_EQ(recall({}, {{0, 1}}), 0.0);
}

TEST(Evaluation, BestPeersGreedyCover) {
  RelevantSet relevant = {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}};
  std::unordered_map<DocumentId, std::uint32_t, index::DocumentIdHash> owner = {
      {{0, 1}, 10}, {{0, 2}, 10}, {{0, 3}, 10},  // peer 10 holds three
      {{0, 4}, 20}, {{0, 5}, 30},
  };
  EXPECT_EQ(best_peers_for_k(relevant, 3, owner), 1u);   // peer 10 suffices
  EXPECT_EQ(best_peers_for_k(relevant, 4, owner), 2u);
  EXPECT_EQ(best_peers_for_k(relevant, 5, owner), 3u);
  EXPECT_EQ(best_peers_for_k(relevant, 100, owner), 3u); // capped at |relevant|
  EXPECT_EQ(best_peers_for_k({}, 5, owner), 0u);
}

}  // namespace
}  // namespace planetp::search
