#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "index/compressed_postings.hpp"
#include "index/inverted_index.hpp"

/// \file epoch_index.hpp
/// Immutable published index epochs: the concurrency layer that lets one hot
/// peer serve thousands of ranked queries while documents stream in
/// (docs/INDEX.md "Epochs & concurrent readers").
///
/// The mutable InvertedIndex stays the single-writer write path. Every
/// DataStore commit (one published/removed document) additionally appends an
/// immutable delta — a small in-memory IndexSegment, or an EpochTombstone
/// carrying the removed document's exact term frequencies — and publishes a
/// new EpochSnapshot: base CompressedIndex + pending segments + pending
/// tombstones behind one `shared_ptr`. Readers copy the snapshot pointer
/// (a mutex-guarded two-refcount-op critical section — see snapshot()) and
/// rank entirely outside any lock; the snapshot pins everything it
/// needs, so it stays valid (and keeps scoring removed documents) for as
/// long as any reader holds it, no matter what the writer does next.
///
/// Two folding mechanisms keep per-query segment fan-in logarithmic
/// (Witten, Moffat & Bell's segment-merge organization, the same reference
/// compressed_postings.hpp builds on):
///   - writer-side *coalescing*: whenever `coalesce_fanin` trailing pending
///     segments reach the same level, they are concatenated into one
///     segment of the next level (pure concatenation — per-document commit
///     sequence numbers are preserved, so liveness checks stay exact);
///   - a *base merge* (background thread by default) that folds every
///     pending segment and tombstone up to a cut into a fresh read-optimized
///     CompressedIndex, dropping dead postings for good.
///
/// The correctness contract is byte-identity: ranking any EpochSnapshot
/// (search::score_snapshot / SnapshotRanker) produces bit-for-bit the same
/// scores, documents, and tie-breaks as ranking a sequential single-threaded
/// store holding the same documents — regardless of segment layout, merge
/// timing, or how many removals are still unfolded. The arithmetic argument:
/// scoring accumulates per-document sums in lexicographic term order on both
/// paths, collection statistics are exact integers (tombstones carry the
/// removed document's term frequencies, so IDF inputs match the sequential
/// store's), and dead postings are skipped via exact commit-sequence
/// comparisons. tests/test_epoch_snapshot.cpp pins this per epoch against a
/// sequential oracle, including under TSan with live concurrent publishes.

namespace planetp::index {

/// An immutable slice of the index: the documents of one or more commits,
/// term-major. Segments are small (one document per commit, coalesced
/// geometrically); everything is plain vectors so readers touch contiguous
/// memory.
struct IndexSegment {
  struct TermEntry {
    std::string term;
    std::vector<std::uint32_t> dense;  ///< index into docs, ascending
    std::vector<std::uint32_t> freqs;  ///< parallel to dense
    std::uint64_t collection_freq = 0;
  };

  std::vector<DocumentId> docs;             ///< in commit order
  std::vector<std::uint32_t> doc_lengths;   ///< parallel to docs
  /// Commit sequence (== epoch) of each document. A posting for docs[i] is
  /// dead in a snapshot iff that snapshot holds a tombstone for the document
  /// with a larger sequence — exact per-occurrence liveness even after
  /// coalescing mixes commits into one segment.
  std::vector<std::uint64_t> doc_seqs;
  std::vector<TermEntry> terms;             ///< sorted by term
  std::uint64_t min_seq = 0;                ///< smallest doc commit sequence
  std::uint64_t max_seq = 0;                ///< largest doc commit sequence
  std::uint32_t level = 0;                  ///< coalescing tier (0 = fresh commit)

  /// Binary search; nullptr when the term is absent.
  const TermEntry* find(std::string_view term) const;
  std::uint64_t collection_frequency(std::string_view term) const {
    const TermEntry* e = find(term);
    return e == nullptr ? 0 : e->collection_freq;
  }
};

/// The removal record of one unpublished document: its exact term
/// frequencies at removal time, so snapshot-wide collection statistics stay
/// equal to a sequential store that never indexed the document at all.
struct EpochTombstone {
  std::uint64_t seq = 0;  ///< commit sequence (== epoch) of the removal
  DocumentId doc;
  std::uint32_t doc_length = 0;
  std::vector<std::pair<std::string, std::uint32_t>> term_freqs;
};

/// One published epoch: an immutable, self-contained view of the store's
/// index. Readers rank against it lock-free; the shared_ptr members pin the
/// base and every segment/tombstone, so a held snapshot never changes and
/// never dangles. Accessors mirror the InvertedIndex statistics the ranking
/// equations need, adjusted exactly for unfolded removals.
class EpochSnapshot {
 public:
  std::uint64_t epoch() const { return epoch_; }

  /// Live documents (postings of removed documents are skipped, exactly as
  /// a sequential store that removed them).
  std::size_t num_documents() const { return num_docs_; }

  /// f_t across live documents (IDF input; exact integer arithmetic).
  std::uint64_t collection_frequency(std::string_view term) const;

  /// Accumulator domain: dense base ids then segment documents, in order.
  /// Dead occurrences own a (never-touched) slot too.
  std::size_t slot_count() const { return slot_count_; }

  DocumentId doc_at_slot(std::uint32_t slot) const;
  std::uint32_t doc_length_at_slot(std::uint32_t slot) const;

  /// Visit every *live* posting of \p term as fn(slot, term_freq). Postings
  /// of documents removed by a pinned tombstone are skipped via exact
  /// commit-sequence comparison.
  template <typename Fn>
  void for_each_posting(std::string_view term, Fn&& fn) const {
    if (base_ != nullptr) {
      for (auto c = base_->postings(term); !c.done(); c.next()) {
        if (!dead_(c.doc(), base_seq_)) fn(c.dense(), c.term_freq());
      }
    }
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      const IndexSegment& seg = *segments_[s];
      const IndexSegment::TermEntry* e = seg.find(term);
      if (e == nullptr) continue;
      const std::uint32_t offset = segment_slot_offsets_[s];
      for (std::size_t i = 0; i < e->dense.size(); ++i) {
        const std::uint32_t d = e->dense[i];
        if (!dead_(seg.docs[d], seg.doc_seqs[d])) fn(offset + d, e->freqs[i]);
      }
    }
  }

  /// Visit only the *segment* live postings of \p term (absolute slots, as
  /// for_each_posting). The pruned top-k driver scores pending segments
  /// exhaustively with this and drives the base through skip-capable
  /// cursors instead of for_each_posting's linear walk.
  template <typename Fn>
  void for_each_segment_posting(std::string_view term, Fn&& fn) const {
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      const IndexSegment& seg = *segments_[s];
      const IndexSegment::TermEntry* e = seg.find(term);
      if (e == nullptr) continue;
      const std::uint32_t offset = segment_slot_offsets_[s];
      for (std::size_t i = 0; i < e->dense.size(); ++i) {
        const std::uint32_t d = e->dense[i];
        if (!dead_(seg.docs[d], seg.doc_seqs[d])) fn(offset + d, e->freqs[i]);
      }
    }
  }

  /// True when a pending tombstone kills \p doc's *base* occurrence — the
  /// liveness predicate the pruned base scan applies per candidate (the
  /// exact commit-sequence comparison for_each_posting uses).
  bool base_dead(DocumentId doc) const { return dead_(doc, base_seq_); }

  // Introspection (tests, stats).
  std::size_t segment_count() const { return segments_.size(); }
  std::size_t tombstone_count() const { return tombstones_.size(); }
  const CompressedIndex* base() const { return base_.get(); }

 private:
  friend class EpochIndex;

  bool dead_(DocumentId doc, std::uint64_t occurrence_seq) const {
    if (latest_tombstone_.empty()) return false;
    auto it = latest_tombstone_.find(doc);
    return it != latest_tombstone_.end() && it->second > occurrence_seq;
  }

  std::uint64_t epoch_ = 0;
  std::shared_ptr<const CompressedIndex> base_;  ///< may be null (no merge yet)
  /// Documents in base_ were live as of this commit sequence; a tombstone
  /// with a larger sequence kills the base occurrence.
  std::uint64_t base_seq_ = 0;
  std::vector<std::shared_ptr<const IndexSegment>> segments_;
  std::vector<std::shared_ptr<const EpochTombstone>> tombstones_;

  // Derived at snapshot build (O(pending), small by the folding policy):
  std::size_t num_docs_ = 0;
  std::size_t slot_count_ = 0;
  std::vector<std::uint32_t> segment_slot_offsets_;  ///< parallel to segments_
  /// doc -> largest pending tombstone sequence.
  std::unordered_map<DocumentId, std::uint64_t, DocumentIdHash> latest_tombstone_;
  /// term -> frequency mass removed by pending tombstones (cf adjustment).
  /// Transparent hashing: probed by string_view on the query hot path.
  std::unordered_map<std::string, std::uint64_t, StringHash, std::equal_to<>> dead_cf_;
};

struct EpochConfig {
  /// Trailing same-level pending segments that trigger a writer-side
  /// coalesce into one next-level segment (logarithmic fan-in).
  std::size_t coalesce_fanin = 8;
  /// A base merge is scheduled when pending segment documents (dead
  /// included) exceed max(merge_min_docs, merge_base_fraction * base docs) —
  /// geometric growth keeps total merge work linear-ish in documents
  /// published.
  std::size_t merge_min_docs = 1024;
  double merge_base_fraction = 0.5;
  /// ... or when this many removals are pending (bounds dead postings and
  /// the per-snapshot adjustment maps).
  std::size_t merge_tombstone_threshold = 64;
  /// Fold on a background thread (started lazily at the first merge). With
  /// false, merges run inline on the committing thread — deterministic, for
  /// tests that pin counters.
  bool background_merge = true;
};

/// Monotonic counters; read them to pin epoch behaviour in tests.
struct EpochStats {
  std::uint64_t epochs_published = 0;   ///< commits (one per document/removal)
  std::uint64_t segments_created = 0;   ///< fresh level-0 segments
  std::uint64_t tombstones_created = 0;
  std::uint64_t coalesces = 0;          ///< writer-side segment concatenations
  std::uint64_t merges_completed = 0;   ///< base rebuilds
  std::uint64_t segments_merged = 0;    ///< segments folded into bases
  std::uint64_t tombstones_merged = 0;  ///< tombstones consumed by merges
  std::uint64_t docs_merged = 0;        ///< live documents written into bases
};

/// Owns the epoch pipeline of one DataStore: the single-writer commit API,
/// the published current snapshot, writer-side coalescing, and
/// the (optionally background) base merge. Readers only ever call
/// snapshot(); every other method is writer-side, in DataStore's existing
/// single-writer contract.
class EpochIndex {
 public:
  explicit EpochIndex(EpochConfig config = {});
  ~EpochIndex();

  EpochIndex(const EpochIndex&) = delete;
  EpochIndex& operator=(const EpochIndex&) = delete;

  /// The current published epoch. Thread-safe against the writer: the only
  /// shared state is the pointer itself, guarded by a dedicated mutex whose
  /// critical section is a shared_ptr copy (two refcount ops) — ranking then
  /// proceeds entirely outside any lock. libstdc++'s atomic<shared_ptr> is
  /// internally the same spinlock-sized critical section but its reader
  /// unlock is relaxed, which is a formal (TSan-visible) race on the stored
  /// pointer; a plain mutex costs the same and is race-free.
  std::shared_ptr<const EpochSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_;
  }

  /// Commit one published document (writer thread): terms from the store's
  /// TermCounts/dictionary, exactly as indexed. Publishes epoch+1.
  void commit_publish(DocumentId doc, const TermDictionary& dict, const TermCounts& counts);

  /// Commit one removal (writer thread): \p term_freqs must be the removed
  /// document's exact postings. Publishes epoch+1.
  void commit_remove(DocumentId doc, std::uint32_t doc_length,
                     std::vector<std::pair<std::string, std::uint32_t>> term_freqs);

  /// Block until no base merge is running or scheduled (tests, benches).
  void wait_for_merges();

  /// Fold *everything* pending (all segments and tombstones) into a fresh
  /// read-optimized base and publish the resulting snapshot, regardless of
  /// the merge thresholds. Writer-side; blocks until done. Benches and
  /// tests call this to deterministically reach a block-structured base for
  /// the pruned top-k path.
  void compact();

  EpochStats stats() const;
  const EpochConfig& config() const { return config_; }

 private:
  void publish_snapshot_locked();
  void coalesce_locked();
  void maybe_merge_locked(std::unique_lock<std::mutex>& lock);
  /// Fold base + pending items with seq <= cut into a new base. Inputs are
  /// immutable; runs without the lock held.
  struct MergeJob;
  std::shared_ptr<const CompressedIndex> run_merge_(const MergeJob& job) const;
  void install_merge_locked(const MergeJob& job, std::shared_ptr<const CompressedIndex> base);
  void merge_worker_();

  EpochConfig config_;
  /// Guards only snapshot_ (never held while building or merging), so a
  /// reader's wait is bounded by another thread's pointer copy.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const EpochSnapshot> snapshot_;

  /// Guards all writer/merge state below. Readers never take it.
  mutable std::mutex mu_;
  std::uint64_t epoch_ = 0;
  std::shared_ptr<const CompressedIndex> base_;
  std::uint64_t base_seq_ = 0;
  std::size_t base_docs_ = 0;
  std::vector<std::shared_ptr<const IndexSegment>> segments_;
  std::vector<std::shared_ptr<const EpochTombstone>> tombstones_;
  std::size_t pending_docs_ = 0;  ///< documents across segments_ (dead included)
  EpochStats stats_;

  // Background merge machinery (thread started lazily at the first merge).
  std::thread merge_thread_;
  std::condition_variable merge_cv_;   ///< wakes the worker
  std::condition_variable idle_cv_;    ///< wakes wait_for_merges
  std::unique_ptr<MergeJob> requested_;
  bool merge_inflight_ = false;
  std::uint64_t merge_cut_ = 0;  ///< coalescing must not cross this while inflight
  bool stop_ = false;
};

}  // namespace planetp::index
