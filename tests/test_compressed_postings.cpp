#include "index/compressed_postings.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "search/ranker.hpp"
#include "search/vector_model.hpp"
#include "util/rng.hpp"

namespace planetp::index {
namespace {

using Freqs = std::unordered_map<std::string, std::uint32_t>;

InvertedIndex small_index() {
  InvertedIndex idx;
  idx.add_document({0, 1}, Freqs{{"alpha", 3}, {"beta", 1}});
  idx.add_document({0, 5}, Freqs{{"alpha", 1}, {"gamma", 2}});
  idx.add_document({2, 0}, Freqs{{"beta", 4}});
  return idx;
}

TEST(CompressedIndex, StatisticsMatchSource) {
  const InvertedIndex src = small_index();
  const CompressedIndex ci = CompressedIndex::build(src);

  EXPECT_EQ(ci.num_documents(), src.num_documents());
  EXPECT_EQ(ci.num_terms(), src.num_terms());
  for (const char* term : {"alpha", "beta", "gamma", "absent"}) {
    EXPECT_EQ(ci.document_frequency(term), src.document_frequency(term)) << term;
    EXPECT_EQ(ci.collection_frequency(term), src.collection_frequency(term)) << term;
  }
  for (const DocumentId& doc : src.documents()) {
    EXPECT_EQ(ci.document_length(doc), src.document_length(doc));
  }
  EXPECT_EQ(ci.document_length(DocumentId{9, 9}), 0u);
}

TEST(CompressedIndex, DecodeMatchesSourcePostings) {
  const InvertedIndex src = small_index();
  const CompressedIndex ci = CompressedIndex::build(src);

  for (const char* term : {"alpha", "beta", "gamma"}) {
    auto expected = src.postings(term);
    std::sort(expected.begin(), expected.end(),
              [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
    const auto decoded = ci.decode(term);
    ASSERT_EQ(decoded.size(), expected.size()) << term;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i].doc, expected[i].doc) << term;
      EXPECT_EQ(decoded[i].term_freq, expected[i].term_freq) << term;
    }
  }
  EXPECT_TRUE(ci.decode("absent").empty());
}

TEST(CompressedIndex, CursorIteratesInDocOrder) {
  const CompressedIndex ci = CompressedIndex::build(small_index());
  DocumentId prev{0, 0};
  bool first = true;
  for (auto c = ci.postings("alpha"); !c.done(); c.next()) {
    if (!first) EXPECT_LT(prev, c.doc());
    prev = c.doc();
    first = false;
  }
  EXPECT_FALSE(first);  // visited at least one posting
}

TEST(CompressedIndex, EmptySource) {
  const CompressedIndex ci = CompressedIndex::build(InvertedIndex{});
  EXPECT_EQ(ci.num_documents(), 0u);
  EXPECT_EQ(ci.num_terms(), 0u);
  EXPECT_TRUE(ci.postings("x").done());
}

TEST(CompressedIndex, ScoreMatchesUncompressedRanking) {
  // Property: scoring the snapshot must equal search::score_documents over
  // the source, for random corpora and queries.
  Rng rng(42);
  InvertedIndex src;
  for (std::uint32_t d = 0; d < 120; ++d) {
    Freqs freqs;
    const std::size_t nterms = 3 + rng.below(12);
    for (std::size_t t = 0; t < nterms; ++t) {
      freqs["w" + std::to_string(rng.below(60))] =
          static_cast<std::uint32_t>(1 + rng.below(5));
    }
    src.add_document({d % 7, d}, freqs);
  }
  const CompressedIndex ci = CompressedIndex::build(src);

  for (int q = 0; q < 20; ++q) {
    std::unordered_map<std::string, double> weights;
    for (int t = 0; t < 3; ++t) {
      weights["w" + std::to_string(rng.below(60))] = 0.5 + rng.uniform();
    }
    const auto expected = search::score_documents(src, weights);
    const auto got = ci.score(weights);
    ASSERT_EQ(got.size(), expected.size()) << "query " << q;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].first, expected[i].doc) << "query " << q << " rank " << i;
      EXPECT_NEAR(got[i].second, expected[i].score, 1e-9);
    }
  }
}

TEST(CompressedIndex, CursorMatchesTermIdIndexForEveryTerm) {
  // Property: for a random corpus, every term's PostingCursor walk must
  // reproduce the TermId-backed mutable index exactly — including terms whose
  // postings emptied out after remove_document, and documents added into
  // reused slots afterwards.
  Rng rng(99);
  InvertedIndex src;
  for (std::uint32_t d = 0; d < 200; ++d) {
    Freqs freqs;
    const std::size_t nterms = 1 + rng.below(20);
    for (std::size_t t = 0; t < nterms; ++t) {
      freqs["w" + std::to_string(rng.below(150))] =
          static_cast<std::uint32_t>(1 + rng.below(6));
    }
    src.add_document({d % 3, d}, freqs);
  }
  for (std::uint32_t d = 0; d < 200; d += 3) src.remove_document({d % 3, d});
  for (std::uint32_t d = 200; d < 230; ++d) {
    Freqs freqs;
    const std::size_t nterms = 1 + rng.below(8);
    for (std::size_t t = 0; t < nterms; ++t) {
      freqs["w" + std::to_string(rng.below(150))] =
          static_cast<std::uint32_t>(1 + rng.below(6));
    }
    src.add_document({d % 3, d}, freqs);
  }

  const CompressedIndex ci = CompressedIndex::build(src);
  EXPECT_EQ(ci.num_documents(), src.num_documents());
  EXPECT_EQ(ci.num_terms(), src.num_terms());

  const TermDictionary& dict = src.dictionary();
  for (TermId id = 0; id < dict.size(); ++id) {
    const std::string term(dict.term(id));
    std::vector<Posting> expected = src.postings_by_id(id);
    std::sort(expected.begin(), expected.end(),
              [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
    std::size_t i = 0;
    for (auto c = ci.postings(term); !c.done(); c.next(), ++i) {
      ASSERT_LT(i, expected.size()) << term;
      EXPECT_EQ(c.doc(), expected[i].doc) << term << " posting " << i;
      EXPECT_EQ(c.term_freq(), expected[i].term_freq) << term << " posting " << i;
    }
    EXPECT_EQ(i, expected.size()) << term;
    EXPECT_EQ(ci.document_frequency(term), src.document_frequency_by_id(id)) << term;
    EXPECT_EQ(ci.collection_frequency(term), src.collection_frequency_by_id(id)) << term;
  }
}

TEST(CompressedIndex, CompressionSavesSpaceOnRealisticCorpus) {
  // A corpus with long posting lists (common terms) compresses well: the
  // snapshot must be much smaller than a naive 12-bytes-per-posting layout.
  Rng rng(7);
  InvertedIndex src;
  std::size_t total_postings = 0;
  for (std::uint32_t d = 0; d < 2000; ++d) {
    Freqs freqs;
    for (int t = 0; t < 30; ++t) {
      freqs["t" + std::to_string(rng.below(500))] =
          static_cast<std::uint32_t>(1 + rng.below(4));
    }
    total_postings += freqs.size();
    src.add_document({0, d}, freqs);
  }
  const CompressedIndex ci = CompressedIndex::build(src);
  const std::size_t naive = total_postings * (sizeof(DocumentId) + sizeof(std::uint32_t));
  EXPECT_LT(ci.memory_bytes(), naive / 2);
  // And it still answers correctly.
  EXPECT_EQ(ci.num_documents(), 2000u);
  EXPECT_EQ(ci.decode("t0").size(), src.postings("t0").size());
}

TEST(CompressedIndex, SparseDocIdsHandled) {
  // Dense renumbering must cope with arbitrary (peer, local) ids.
  InvertedIndex src;
  src.add_document({0, 0}, Freqs{{"x", 1}});
  src.add_document({4000000, 123456}, Freqs{{"x", 2}});
  src.add_document({77, 9}, Freqs{{"x", 3}});
  const CompressedIndex ci = CompressedIndex::build(src);
  const auto decoded = ci.decode("x");
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded.back().doc, (DocumentId{4000000, 123456}));
}

// ---------------------------------------------------------------------------
// Block skip metadata + seek_to (docs/INDEX.md "Block-max pruning")
// ---------------------------------------------------------------------------

/// Corpus where one term appears in (almost) every document, so its posting
/// list spans many blocks. Filler terms vary the document lengths, which is
/// what makes the per-block score maxima non-trivial.
InvertedIndex blocky_index(Rng& rng, std::uint32_t ndocs, std::uint32_t keep_mod) {
  InvertedIndex src;
  for (std::uint32_t d = 0; d < ndocs; ++d) {
    Freqs freqs;
    if (d % keep_mod != 0) freqs["hot"] = static_cast<std::uint32_t>(1 + rng.below(9));
    const std::size_t fillers = rng.below(40);
    for (std::size_t t = 0; t < fillers; ++t) {
      freqs["f" + std::to_string(rng.below(400))] =
          static_cast<std::uint32_t>(1 + rng.below(3));
    }
    if (freqs.empty()) freqs["pad"] = 1;
    src.add_document({0, d}, freqs);
  }
  return src;
}

TEST(CompressedIndex, BlockMetadataMatchesRecomputedOracle) {
  Rng rng(2024);
  const InvertedIndex src = blocky_index(rng, 3000, 17);
  const CompressedIndex ci = CompressedIndex::build(src);

  auto cur = ci.postings("hot");
  const std::uint32_t df = cur.size();
  ASSERT_GT(df, 4 * CompressedIndex::kBlockPostings);  // several full blocks
  EXPECT_EQ(cur.num_blocks(),
            (df + CompressedIndex::kBlockPostings - 1) / CompressedIndex::kBlockPostings);

  // Walk the list linearly and recompute every block's metadata from scratch.
  std::vector<double> oracle_max(cur.num_blocks(), 0.0);
  std::vector<std::uint32_t> oracle_last(cur.num_blocks(), 0);
  std::uint64_t oracle_cf = 0;
  std::uint32_t i = 0;
  double list_max = 0.0;
  for (; !cur.done(); cur.next(), ++i) {
    const std::uint32_t b = i / CompressedIndex::kBlockPostings;
    ASSERT_EQ(cur.current_block(), b) << "posting " << i;
    const double contrib =
        search::doc_weight(cur.term_freq()) * search::length_norm(ci.doc_length_at(cur.dense()));
    oracle_max[b] = std::max(oracle_max[b], contrib);
    list_max = std::max(list_max, contrib);
    oracle_last[b] = cur.dense();
    oracle_cf += cur.term_freq();
  }
  ASSERT_EQ(i, df);

  auto fresh = ci.postings("hot");
  for (std::uint32_t b = 0; b < fresh.num_blocks(); ++b) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fresh.block_max(b)),
              std::bit_cast<std::uint64_t>(oracle_max[b]))
        << "block " << b;
    EXPECT_EQ(fresh.block_last(b), oracle_last[b]) << "block " << b;
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(fresh.list_max()),
            std::bit_cast<std::uint64_t>(list_max));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(ci.max_contribution("hot")),
            std::bit_cast<std::uint64_t>(list_max));
  EXPECT_EQ(fresh.collection_freq(), oracle_cf);
  EXPECT_EQ(ci.collection_frequency("hot"), oracle_cf);
}

TEST(CompressedIndex, SeekToMatchesLinearScan) {
  // Property: seek_to(t) lands on exactly the posting a linear advance-while-
  // behind loop lands on, for random ascending targets — while decoding
  // strictly fewer postings (that's the point of the skip entries).
  Rng rng(77);
  const InvertedIndex src = blocky_index(rng, 4000, 3);  // "hot" in 2/3 of docs
  const CompressedIndex ci = CompressedIndex::build(src);

  auto seeker = ci.postings("hot");
  auto walker = ci.postings("hot");
  ASSERT_GT(seeker.num_blocks(), 3u);

  std::uint32_t target = 0;
  while (true) {
    target += static_cast<std::uint32_t>(1 + rng.below(700));
    seeker.seek_to(target);
    while (!walker.done() && walker.dense() < target) walker.next();
    ASSERT_EQ(seeker.done(), walker.done()) << "target " << target;
    if (seeker.done()) break;
    EXPECT_EQ(seeker.dense(), walker.dense()) << "target " << target;
    EXPECT_EQ(seeker.term_freq(), walker.term_freq()) << "target " << target;
    EXPECT_EQ(seeker.doc(), walker.doc()) << "target " << target;
  }
  EXPECT_GT(seeker.blocks_jumped(), 0u);
  EXPECT_LT(seeker.postings_decoded(), walker.postings_decoded());
}

TEST(CompressedIndex, SeekToEdgeCases) {
  Rng rng(5);
  const InvertedIndex src = blocky_index(rng, 1500, 2);
  const CompressedIndex ci = CompressedIndex::build(src);

  // No-op when already at or past the target.
  auto c = ci.postings("hot");
  const std::uint32_t first = c.dense();
  c.seek_to(first);
  EXPECT_EQ(c.dense(), first);
  c.seek_to(0);
  EXPECT_EQ(c.dense(), first);

  // Seeking past the last posting exhausts the cursor, and further seeks on
  // an exhausted cursor are harmless no-ops.
  c.seek_to(static_cast<std::uint32_t>(ci.num_documents()) + 1);
  EXPECT_TRUE(c.done());
  c.seek_to(10);
  EXPECT_TRUE(c.done());

  // A cursor for an absent term has no blocks and is born done.
  auto absent = ci.postings("nope");
  EXPECT_TRUE(absent.done());
  EXPECT_EQ(absent.num_blocks(), 0u);
  absent.seek_to(3);
  EXPECT_TRUE(absent.done());
}

TEST(CompressedIndex, FindBlockReturnsFirstReachableBlock) {
  Rng rng(31);
  const InvertedIndex src = blocky_index(rng, 2500, 5);
  const CompressedIndex ci = CompressedIndex::build(src);

  auto c = ci.postings("hot");
  const std::uint32_t nb = c.num_blocks();
  ASSERT_GT(nb, 2u);
  for (int trial = 0; trial < 200; ++trial) {
    const auto target = static_cast<std::uint32_t>(rng.below(ci.num_documents() + 10));
    std::uint32_t oracle = 0;
    while (oracle < nb && c.block_last(oracle) < target) ++oracle;
    EXPECT_EQ(c.find_block(target), oracle) << "target " << target;
  }
}

}  // namespace
}  // namespace planetp::index
