#include "net/reactor.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace planetp::net {

namespace {

/// Parse "host:port"; only IPv4 dotted quads (or localhost) are supported —
/// the runtime targets LAN/loopback deployments and tests.
bool parse_address(const std::string& address, sockaddr_in& out) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= address.size()) return false;
  std::string host = address.substr(0, colon);
  if (host == "localhost") host = "127.0.0.1";
  unsigned long port = 0;
  for (std::size_t i = colon + 1; i < address.size(); ++i) {
    const char c = address[i];
    if (c < '0' || c > '9') return false;
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) return false;
  }
  if (port == 0) return false;
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(static_cast<std::uint16_t>(port));
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

TimePoint Reactor::steady_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Reactor::Reactor(ReactorConfig config) : config_(config) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("Reactor: epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw std::runtime_error("Reactor: eventfd failed");
}

Reactor::~Reactor() { stop(); }

std::uint16_t Reactor::listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("Reactor: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) < 0 ||
      ::listen(listen_fd_, SOMAXCONN) < 0) {
    throw std::runtime_error("Reactor: bind/listen failed");
  }
  socklen_t len = sizeof sa;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sa), &len);
  port_ = ntohs(sa.sin_port);
  return port_;
}

void Reactor::start(FrameHandler on_frame, FailureHandler on_failure) {
  on_frame_ = std::move(on_frame);
  on_failure_ = std::move(on_failure);

  // Sentinel fds carry generation 0 in the upper half of the epoll data word;
  // connection fds always carry gen >= 1, so the two can never collide.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = static_cast<std::uint64_t>(wake_fd_);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  if (listen_fd_ >= 0) {
    ev.events = EPOLLIN;
    ev.data.u64 = static_cast<std::uint64_t>(listen_fd_);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }

  running_.store(true);
  thread_ = std::thread([this] { loop(); });
}

void Reactor::stop() {
  running_.store(false);
  if (thread_.joinable()) {
    wake();
    thread_.join();
  }
  counters_.closes.fetch_add(conns_.size(), kRelaxed);
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  links_.clear();
  pending_reads_.clear();
  counters_.connections.store(0, kRelaxed);
  counters_.queued_bytes.store(0, kRelaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void Reactor::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(wake_fd_, &one, sizeof one);
}

SendResult Reactor::send(const std::string& address, Frame frame, SendClass cls) {
  const std::size_t fsz = frame_size(frame);
  if (fsz - 4 > config_.max_frame_bytes) {
    counters_.drops_backpressure.fetch_add(1, kRelaxed);
    return SendResult::kRejectedOversize;
  }
  // Fast-path RPC admission off-thread; the authoritative check re-runs on
  // the reactor thread where the gauge cannot race with the enqueue.
  if (cls == SendClass::kRpc &&
      counters_.queued_bytes.load(kRelaxed) + fsz > config_.global_outbound_cap) {
    counters_.rpc_rejected_full.fetch_add(1, kRelaxed);
    return SendResult::kRejectedFull;
  }
  post([this, address, frame = std::move(frame), cls]() mutable {
    enqueue_on_reactor(address, std::move(frame), cls);
  });
  return SendResult::kEnqueued;
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(fn));
  }
  wake();
}

std::uint64_t Reactor::schedule(Duration delay, std::function<void()> fn) {
  const std::uint64_t token = next_timer_token_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    pending_timers_.push_back(Timer{steady_now() + delay, token, std::move(fn)});
  }
  wake();
  return token;
}

void Reactor::cancel_timer(std::uint64_t token) {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    cancelled_timers_.push_back(token);
  }
  wake();
}

void Reactor::loop() {
  next_maintenance_ = steady_now() + config_.maintenance_interval;
  epoll_event events[128];

  while (running_.load()) {
    drain_tasks();
    fire_timers();

    TimePoint now = steady_now();
    if (now >= next_maintenance_) {
      maintenance_sweep();
      now = steady_now();
      next_maintenance_ = now + config_.maintenance_interval;
    }
    process_pending_reads();

    // Timeout: zero when work is already pending, else until the nearest of
    // the next timer and the maintenance sweep (so connect timeouts and idle
    // reaping run without traffic). Round up to avoid a sub-ms busy spin.
    int timeout_ms;
    bool work_pending = !pending_reads_.empty();
    if (!work_pending) {
      std::lock_guard<std::mutex> lock(mu_);
      work_pending = !tasks_.empty();
    }
    if (work_pending) {
      timeout_ms = 0;
    } else {
      TimePoint next = next_maintenance_;
      if (!timers_.empty() && timers_.begin()->first < next) next = timers_.begin()->first;
      const TimePoint wait_us = next > now ? next - now : 0;
      timeout_ms = static_cast<int>((wait_us + 999) / 1000);
    }

    const int n = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
    for (int i = 0; i < n; ++i) {
      const std::uint32_t flags = events[i].events;
      const std::uint64_t data = events[i].data.u64;
      const int fd = static_cast<int>(data & 0xffffffffu);
      const std::uint64_t gen = data >> 32;

      if (gen == 0) {
        if (fd == wake_fd_) {
          std::uint64_t v;
          [[maybe_unused]] const ssize_t r = ::read(wake_fd_, &v, sizeof v);
        } else if (fd == listen_fd_) {
          accept_new();
        }
        continue;
      }

      // A connection closed earlier in this batch may have let accept() reuse
      // its fd number; the generation tag rejects such stale events.
      auto alive = [&]() -> Connection* {
        auto it = conns_.find(fd);
        if (it == conns_.end() || (it->second.gen & 0xffffffffu) != gen) return nullptr;
        return &it->second;
      };

      Connection* conn = alive();
      if (!conn) continue;
      if (flags & (EPOLLERR | EPOLLHUP)) {
        // Let the normal paths classify it: a pending connect reads SO_ERROR,
        // an established stream sees EOF/reset on read.
        if (conn->connecting) {
          handle_writable(*conn);
        } else {
          handle_readable(*conn);
        }
        if (!(conn = alive())) continue;
      }
      if (flags & EPOLLIN) {
        handle_readable(*conn);
        if (!(conn = alive())) continue;
      }
      if (flags & EPOLLOUT) handle_writable(*conn);
    }
  }
}

void Reactor::drain_tasks() {
  std::deque<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks.swap(tasks_);
  }
  for (auto& fn : tasks) fn();
}

void Reactor::fire_timers() {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    for (auto& timer : pending_timers_) {
      const TimePoint at = timer.at;
      timers_.emplace(at, std::move(timer));
    }
    pending_timers_.clear();
    for (const std::uint64_t token : cancelled_timers_) {
      for (auto it = timers_.begin(); it != timers_.end(); ++it) {
        if (it->second.token == token) {
          timers_.erase(it);
          break;
        }
      }
    }
    cancelled_timers_.clear();
  }
  const TimePoint now = steady_now();
  while (!timers_.empty() && timers_.begin()->first <= now) {
    auto fn = std::move(timers_.begin()->second.fn);
    timers_.erase(timers_.begin());
    if (fn) fn();
  }
}

void Reactor::process_pending_reads() {
  if (pending_reads_.empty()) return;
  std::vector<int> ready;
  ready.swap(pending_reads_);
  for (const int fd : ready) {
    auto it = conns_.find(fd);
    if (it == conns_.end() || !it->second.read_pending) continue;
    it->second.read_pending = false;
    handle_readable(it->second);
  }
}

void Reactor::accept_new() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: batch drained; EMFILE etc.: retry on the next event
    }
    set_nodelay(fd);

    if ((next_gen_ & 0xffffffffu) == 0) ++next_gen_;  // gen 0 is the sentinel
    Connection conn;
    conn.fd = fd;
    conn.gen = next_gen_++;
    conn.decoder.set_max_frame_bytes(config_.max_frame_bytes);
    conn.created_at = conn.last_activity = steady_now();

    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
    ev.data.u64 = (conn.gen << 32) | static_cast<std::uint32_t>(fd);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    counters_.accepts.fetch_add(1, kRelaxed);
    counters_.connections.fetch_add(1, kRelaxed);
  }
}

Reactor::Connection* Reactor::ensure_connection(const std::string& address, TimePoint now) {
  Link& link = links_[address];
  if (link.fd >= 0) {
    auto it = conns_.find(link.fd);
    if (it != conns_.end()) return &it->second;
    link.fd = -1;
  }

  sockaddr_in sa{};
  if (!parse_address(address, sa)) {
    counters_.drops_unroutable.fetch_add(1, kRelaxed);
    if (on_failure_) on_failure_(address);
    return nullptr;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    counters_.drops_unroutable.fetch_add(1, kRelaxed);
    if (on_failure_) on_failure_(address);
    return nullptr;
  }
  set_nodelay(fd);
  if (config_.socket_send_buffer > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.socket_send_buffer,
                 sizeof config_.socket_send_buffer);
  }

  bool connecting = false;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) < 0) {
    if (errno == EINPROGRESS) {
      connecting = true;
    } else {
      ::close(fd);
      counters_.connects_failed.fetch_add(1, kRelaxed);
      note_delivery_failure(address, now);
      return nullptr;
    }
  } else {
    counters_.connects_ok.fetch_add(1, kRelaxed);
    link.failures = 0;
    link.next_attempt = 0;
  }

  if ((next_gen_ & 0xffffffffu) == 0) ++next_gen_;
  Connection conn;
  conn.fd = fd;
  conn.gen = next_gen_++;
  conn.address = address;
  conn.connecting = connecting;
  conn.decoder.set_max_frame_bytes(config_.max_frame_bytes);
  conn.created_at = conn.last_activity = now;

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
  ev.data.u64 = (conn.gen << 32) | static_cast<std::uint32_t>(fd);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    counters_.drops_unroutable.fetch_add(1, kRelaxed);
    if (on_failure_) on_failure_(address);
    return nullptr;
  }
  auto [it, inserted] = conns_.emplace(fd, std::move(conn));
  link.fd = fd;
  counters_.connections.fetch_add(1, kRelaxed);
  return &it->second;
}

void Reactor::enqueue_on_reactor(const std::string& address, Frame frame, SendClass cls) {
  const TimePoint now = steady_now();

  auto lit = links_.find(address);
  if (lit != links_.end() && lit->second.fd < 0 && now < lit->second.next_attempt) {
    counters_.drops_backoff.fetch_add(1, kRelaxed);
    if (on_failure_) on_failure_(address);
    return;
  }

  Connection* conn = ensure_connection(address, now);
  if (!conn) return;

  OutFrame out;
  out.cls = cls;
  out.bytes.reserve(frame_size(frame));
  append_frame(out.bytes, frame);
  const std::size_t fsz = out.bytes.size();

  bool dropped = false;
  if (cls == SendClass::kRpc) {
    // Authoritative admission: an RPC may displace this connection's queued
    // gossip, but is rejected rather than pushing the gauge over the global
    // cap — RPC frames are never evicted once queued.
    while (counters_.queued_bytes.load(kRelaxed) + fsz > config_.global_outbound_cap) {
      if (!drop_oldest_gossip(*conn)) break;
      dropped = true;
    }
    if (counters_.queued_bytes.load(kRelaxed) + fsz > config_.global_outbound_cap) {
      counters_.rpc_rejected_full.fetch_add(1, kRelaxed);
      if (on_failure_) on_failure_(address);
      return;
    }
  }

  conn->out.push_back(std::move(out));
  conn->queued_bytes += fsz;
  counters_.queued_bytes.fetch_add(fsz, kRelaxed);
  dropped |= enforce_caps(*conn);
  counters_.note_queued_peak();
  if (dropped && on_failure_) on_failure_(address);

  if (!conn->connecting) flush(*conn);
}

bool Reactor::enforce_caps(Connection& conn) {
  bool dropped = false;
  while (conn.queued_bytes > config_.per_connection_outbound_cap ||
         counters_.queued_bytes.load(kRelaxed) > config_.global_outbound_cap) {
    if (!drop_oldest_gossip(conn)) break;
    dropped = true;
  }
  return dropped;
}

bool Reactor::drop_oldest_gossip(Connection& conn) {
  // The front frame is unevictable once partially written: dropping it would
  // desynchronize the stream mid-frame.
  const std::size_t start = conn.front_pos > 0 ? 1 : 0;
  for (std::size_t i = start; i < conn.out.size(); ++i) {
    if (conn.out[i].cls != SendClass::kGossip) continue;
    const std::size_t sz = conn.out[i].bytes.size();
    conn.out.erase(conn.out.begin() + static_cast<std::ptrdiff_t>(i));
    conn.queued_bytes -= sz;
    counters_.queued_bytes.fetch_sub(sz, kRelaxed);
    counters_.drops_backpressure.fetch_add(1, kRelaxed);
    return true;
  }
  return false;
}

void Reactor::flush(Connection& conn) {
  const int fd = conn.fd;
  while (!conn.out.empty()) {
    OutFrame& front = conn.out.front();
    const std::size_t remaining = front.bytes.size() - conn.front_pos;
    const ssize_t n = ::send(fd, front.bytes.data() + conn.front_pos, remaining, MSG_NOSIGNAL);
    if (n > 0) {
      counters_.bytes_out.fetch_add(static_cast<std::uint64_t>(n), kRelaxed);
      conn.last_activity = steady_now();
      conn.front_pos += static_cast<std::size_t>(n);
      if (conn.front_pos == front.bytes.size()) {
        counters_.frames_out.fetch_add(1, kRelaxed);
        conn.queued_bytes -= front.bytes.size();
        counters_.queued_bytes.fetch_sub(front.bytes.size(), kRelaxed);
        conn.out.pop_front();
        conn.front_pos = 0;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;  // EPOLLOUT rearms
    close_connection(fd, CloseReason::kError);
    return;
  }
}

void Reactor::handle_readable(Connection& conn) {
  const int fd = conn.fd;
  std::size_t budget = config_.read_budget_per_wakeup;
  std::uint8_t buf[65536];
  for (;;) {
    if (budget == 0) {
      // Budget spent; be fair to other connections and resume next iteration.
      if (!conn.read_pending) {
        conn.read_pending = true;
        pending_reads_.push_back(fd);
      }
      return;
    }
    const std::size_t want = budget < sizeof buf ? budget : sizeof buf;
    const ssize_t n = ::recv(fd, buf, want, 0);
    if (n > 0) {
      counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(n), kRelaxed);
      conn.last_activity = steady_now();
      conn.decoder.feed({buf, static_cast<std::size_t>(n)});
      try {
        while (auto frame = conn.decoder.next()) {
          counters_.frames_in.fetch_add(1, kRelaxed);
          if (on_frame_) on_frame_(*frame);
        }
      } catch (const std::exception&) {
        counters_.oversize_closes.fetch_add(1, kRelaxed);
        close_connection(fd, CloseReason::kError);
        return;
      }
      budget -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn.read_pending = false;
        return;
      }
    }
    // EOF or reset. A close with nothing queued on an established connection
    // is benign (the remote idle-reaper RSTs on purpose); anything else is a
    // delivery failure.
    const bool clean = conn.out.empty() && !conn.connecting;
    close_connection(fd, clean ? CloseReason::kRemoteClose : CloseReason::kError);
    return;
  }
}

void Reactor::handle_writable(Connection& conn) {
  if (conn.connecting) {
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close_connection(conn.fd, CloseReason::kError);
      return;
    }
    conn.connecting = false;
    conn.last_activity = steady_now();
    counters_.connects_ok.fetch_add(1, kRelaxed);
    Link& link = links_[conn.address];
    link.failures = 0;
    link.next_attempt = 0;
  }
  flush(conn);
}

void Reactor::close_connection(int fd, CloseReason reason) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection conn = std::move(it->second);
  conns_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  if (reason == CloseReason::kIdle) {
    // RST instead of FIN: loopback churn soaks would otherwise pile up
    // TIME_WAIT entries and exhaust the ephemeral port range.
    const linger lg{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  }
  ::close(fd);

  counters_.closes.fetch_add(1, kRelaxed);
  counters_.connections.fetch_sub(1, kRelaxed);
  if (reason == CloseReason::kIdle) counters_.idle_reaped.fetch_add(1, kRelaxed);
  if (conn.queued_bytes > 0) counters_.queued_bytes.fetch_sub(conn.queued_bytes, kRelaxed);

  if (conn.address.empty()) return;  // inbound: nothing to report or reconnect
  auto lit = links_.find(conn.address);
  if (lit != links_.end() && lit->second.fd == fd) lit->second.fd = -1;
  if (reason == CloseReason::kError) {
    if (conn.connecting) counters_.connects_failed.fetch_add(1, kRelaxed);
    // Definitive failure — queued output or not: a refused connect with an
    // empty queue still means the peer is unreachable, and SUSPECT demotion
    // must hear about it.
    note_delivery_failure(conn.address, steady_now());
  }
}

void Reactor::note_delivery_failure(const std::string& address, TimePoint now) {
  Link& link = links_[address];
  link.failures += 1;
  const std::uint32_t shift = link.failures - 1 < 20 ? link.failures - 1 : 20;
  Duration delay = config_.reconnect_backoff_base << shift;
  if (delay > config_.reconnect_backoff_max || delay <= 0) delay = config_.reconnect_backoff_max;
  delay = static_cast<Duration>(static_cast<double>(delay) * rng_.uniform(0.5, 1.5));
  link.next_attempt = now + delay;
  counters_.backoffs_engaged.fetch_add(1, kRelaxed);
  if (on_failure_) on_failure_(address);
}

void Reactor::maintenance_sweep() {
  const TimePoint now = steady_now();
  std::vector<int> timed_out;
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    if (conn.connecting) {
      if (now - conn.created_at > config_.connect_timeout) timed_out.push_back(fd);
    } else if (config_.idle_timeout > 0 && conn.out.empty() &&
               now - conn.last_activity > config_.idle_timeout) {
      idle.push_back(fd);
    }
  }
  for (const int fd : timed_out) close_connection(fd, CloseReason::kError);
  for (const int fd : idle) close_connection(fd, CloseReason::kIdle);
}

}  // namespace planetp::net
