#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/ipf.hpp"
#include "search/ranker.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

/// \file distributed.hpp
/// PlanetP's two-stage ranked retrieval (§5.2): rank peers by eq. 3 using
/// IPF over the gossiped Bloom filters, then contact them top-down, ranking
/// returned documents with eq. 2 (IPF substituted for IDF) and stopping
/// adaptively per eq. 4.
///
/// The contact loop is failure-aware (see docs/SEARCH.md): a contact returns
/// an outcome rather than a bare result vector, failed peers are retried with
/// exponential backoff and then *substituted* by the next candidate down the
/// eq. 3 ranking (so eq. 4 still sees productive consecutive contacts), slow
/// peers can be hedged with a duplicate request to the next candidate, and
/// the whole search respects an optional deadline. The result reports
/// coverage so callers can distinguish a complete answer from a degraded one.

namespace planetp::search {

/// Eq. 4's adaptive stopping rule: stop after p consecutive peers contribute
/// nothing to the current top-k, with
///   p = floor(2 + N/300) + 2 * floor(k/50).
struct StoppingHeuristic {
  double base = 2.0;
  double community_divisor = 300.0;
  double k_multiplier = 2.0;
  double k_divisor = 50.0;

  /// Patience per eq. 4. Degenerate configurations are guarded rather than
  /// trusted: a non-positive or non-finite divisor contributes nothing
  /// (instead of dividing by zero), and the result is clamped to
  /// [0, kMaxPatience] so casting the double cannot overflow size_t.
  std::size_t patience(std::size_t community_size, std::size_t k) const {
    static constexpr double kMaxPatience = 1e9;
    double first = base;
    if (std::isfinite(community_divisor) && community_divisor > 0.0) {
      first += static_cast<double>(community_size) / community_divisor;
    }
    double second = 0.0;
    if (std::isfinite(k_divisor) && k_divisor > 0.0 && std::isfinite(k_multiplier)) {
      second = k_multiplier * std::floor(static_cast<double>(k) / k_divisor);
    }
    double total = std::floor(first) + std::floor(second);
    if (!std::isfinite(total) || total < 0.0) total = 0.0;
    return static_cast<std::size_t>(std::min(total, kMaxPatience));
  }
};

/// Peer relevance per eq. 3: R_i(Q) = sum of IPF_t over query terms t that
/// hit peer i's Bloom filter. Peers with R_i = 0 are omitted.
///
/// Ordering is explicitly deterministic: descending *effective* rank (eq. 3
/// mass demoted by the peer's local SUSPECT level), ties broken by ascending
/// peer id. Substitution order under failure is therefore reproducible from
/// the searcher's directory state alone.
struct RankedPeer {
  std::uint32_t peer = 0;
  double rank = 0.0;           ///< raw eq. 3 candidate mass
  std::uint32_t suspicion = 0; ///< SUSPECT level copied from the searcher's view

  /// Rank used for ordering: each recorded query-time failure halves-ish the
  /// peer's priority without erasing its candidate mass.
  double effective_rank() const { return rank / (1.0 + static_cast<double>(suspicion)); }
};
std::vector<RankedPeer> rank_peers(const IpfTable& ipf);

/// Outcome classification of one peer contact.
enum class ContactStatus : std::uint8_t {
  kOk = 0,           ///< peer answered; docs are valid
  kTimeout = 1,      ///< no answer within the per-peer deadline (retryable)
  kError = 2,        ///< peer answered garbage / reported failure (retryable)
  kUnreachable = 3,  ///< no route to the peer at all (not retried in-query)
};

const char* contact_status_name(ContactStatus status);

/// What one contact attempt produced. Implicitly constructible from a bare
/// document vector so infallible in-process contact functions stay terse.
struct PeerSearchResult {
  ContactStatus status = ContactStatus::kOk;
  std::vector<ScoredDoc> docs;
  Duration latency = 0;  ///< observed service time; drives hedging/deadline

  PeerSearchResult() = default;
  PeerSearchResult(std::vector<ScoredDoc> d) : docs(std::move(d)) {}  // NOLINT: implicit

  static PeerSearchResult ok(std::vector<ScoredDoc> docs, Duration latency = 0) {
    PeerSearchResult r;
    r.docs = std::move(docs);
    r.latency = latency;
    return r;
  }
  static PeerSearchResult failure(ContactStatus status, Duration latency = 0) {
    PeerSearchResult r;
    r.status = status;
    r.latency = latency;
    return r;
  }
  bool is_ok() const { return status == ContactStatus::kOk; }
};

/// Contact function: evaluate the weighted query at a peer and report the
/// outcome. In-process communities call straight into the peer's index; the
/// live runtime issues an RPC and maps timeout/decode failures onto the
/// status codes. tfipf_search may invoke it several times for the same peer
/// (bounded retry) and concurrently from hedged searches, so it must be
/// re-entrant with respect to the data it captures.
using PeerSearchFn = std::function<PeerSearchResult(
    std::uint32_t peer, const std::unordered_map<std::string, double>& term_weights)>;

/// Bounded retry with exponential backoff and deterministic jitter.
struct RetryPolicy {
  std::uint32_t max_attempts = 2;             ///< total tries per peer; 1 = no retry
  Duration base_backoff = 50 * kMillisecond;  ///< wait before the first retry
  Duration max_backoff = 1 * kSecond;         ///< backoff growth cap
  double jitter = 0.5;                        ///< fraction of the backoff randomized

  /// Backoff before retry number \p retry (1-based): min(base * 2^(retry-1),
  /// max), with a uniform jitter slice drawn from \p rng so synchronized
  /// searchers do not retry in lockstep. Deterministic given the rng state.
  Duration backoff_before(std::uint32_t retry, Rng& rng) const;
};

struct DistributedSearchOptions {
  std::size_t k = 20;          ///< user's result budget
  std::size_t group_size = 1;  ///< m: peers contacted per step (§5.2's parallel variant)
  StoppingHeuristic stopping;
  std::size_t max_peers = 0;   ///< hard cap on contacts; 0 = unlimited

  RetryPolicy retry;           ///< per-peer retry budget for kTimeout/kError
  /// Total time budget for the whole search; 0 = unlimited. Measured with
  /// `clock` when provided, otherwise by accumulating reported contact
  /// latencies and backoff waits (the simulator's virtual cost model).
  Duration deadline = 0;
  /// A successful contact slower than this also triggers a duplicate
  /// ("hedged") request to the next-ranked uncontacted candidate; 0 = off.
  Duration hedge_threshold = 0;
  std::uint64_t seed = 0;      ///< jitter stream; fixed seed => reproducible schedule
  /// Optional query-hot-path cache (docs/SEARCH.md). When set, the eq. 3
  /// IpfTable is assembled from warm term→candidate entries instead of
  /// probing every filter; results are byte-identical to the uncached scan.
  CandidateCache* cache = nullptr;
  /// Backoff sleep hook for live runtimes; nullptr = don't sleep (in-process
  /// and simulated communities have no wall clock to burn).
  std::function<void(Duration)> sleep;
  /// Wall-clock source for the deadline; nullptr = accumulate latencies.
  std::function<TimePoint()> clock;
};

/// Final per-peer contact record, in contact order.
struct PeerOutcome {
  std::uint32_t peer = 0;
  ContactStatus status = ContactStatus::kOk;  ///< outcome of the *last* attempt
  std::uint32_t attempts = 0;                 ///< 1 = answered first try
  Duration latency = 0;                       ///< total time spent on this peer
  bool hedged = false;                        ///< contacted as a hedge duplicate
};

struct DistributedSearchResult {
  std::vector<ScoredDoc> docs;            ///< final top-k
  std::vector<std::uint32_t> contacted;   ///< peers contacted (attempted), in order
  std::size_t candidate_peers = 0;        ///< peers with non-zero rank

  std::vector<PeerOutcome> outcomes;      ///< per-peer final outcome + latency
  std::size_t failed_peers = 0;           ///< peers that never answered
  std::size_t substituted_peers = 0;      ///< failures replaced by a lower-ranked candidate
  std::size_t retries = 0;                ///< extra attempts beyond each peer's first
  std::size_t hedged_contacts = 0;        ///< duplicate requests to next-ranked peers
  /// Candidate mass reached: eq. 3 mass of peers that answered divided by the
  /// mass of peers attempted. 1.0 means every contacted peer answered (a
  /// complete answer as far as the stopping rule saw); < 1.0 means the result
  /// is degraded by unreachable/timed-out peers.
  double coverage = 1.0;
  bool deadline_exceeded = false;         ///< stopped by opts.deadline
  Duration elapsed = 0;                   ///< total time charged to the search
};

/// Run the full TFxIPF retrieval against the searcher's view of the
/// community (\p filters) using \p contact to reach peers. With default
/// options and an infallible contact function the behaviour (contact order,
/// merged ranking, returned top-k) is identical to the pre-failure-aware
/// implementation.
DistributedSearchResult tfipf_search(const std::vector<std::string>& query_terms,
                                     const std::vector<PeerFilter>& filters,
                                     const PeerSearchFn& contact,
                                     const DistributedSearchOptions& opts);

}  // namespace planetp::search
