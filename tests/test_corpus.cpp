#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "corpus/placement.hpp"
#include "corpus/synthetic.hpp"

namespace planetp::corpus {
namespace {

TEST(Synthetic, GeneratesRequestedShape) {
  const auto col = generate(preset_tiny());
  EXPECT_EQ(col.docs.size(), 200u);
  EXPECT_EQ(col.queries.size(), 12u);
  EXPECT_GT(col.distinct_terms, 100u);
  EXPECT_GT(col.approx_bytes(), 0u);
}

TEST(Synthetic, DeterministicForSeed) {
  const auto a = generate(preset_tiny());
  const auto b = generate(preset_tiny());
  ASSERT_EQ(a.docs.size(), b.docs.size());
  for (std::size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].terms, b.docs[i].terms);
  }
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].terms, b.queries[i].terms);
    EXPECT_EQ(a.queries[i].relevant_docs, b.queries[i].relevant_docs);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto spec = preset_tiny();
  const auto a = generate(spec);
  spec.seed ^= 0xdeadbeef;
  const auto b = generate(spec);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.docs.size() && !any_diff; ++i) {
    any_diff = a.docs[i].terms != b.docs[i].terms;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, DocsRespectLengthBounds) {
  const auto spec = preset_tiny();
  const auto col = generate(spec);
  for (const auto& doc : col.docs) {
    EXPECT_GE(doc.length(), spec.min_doc_tokens) << doc.id;
  }
}

TEST(Synthetic, QueriesHaveJudgmentsAndTerms) {
  const auto spec = preset_tiny();
  const auto col = generate(spec);
  for (const auto& q : col.queries) {
    EXPECT_GE(q.terms.size(), spec.query_terms_min);
    EXPECT_LE(q.terms.size(), spec.query_terms_max);
    EXPECT_FALSE(q.relevant_docs.empty());
    EXPECT_LE(q.relevant_docs.size(), spec.max_relevant_per_query);
  }
}

TEST(Synthetic, RelevantDocsMatchQueryTopic) {
  const auto col = generate(preset_tiny());
  for (const auto& q : col.queries) {
    for (std::uint32_t doc_id : q.relevant_docs) {
      EXPECT_EQ(col.docs[doc_id].primary_topic, q.topic);
    }
  }
}

TEST(Synthetic, QueryTermsAppearInRelevantDocs) {
  // A query's terms are drawn from its topic's signature, so a decent share
  // of its relevant documents must actually contain at least one term —
  // otherwise the judgments would be unreachable by any ranker.
  const auto col = generate(preset_tiny());
  for (const auto& q : col.queries) {
    std::size_t reachable = 0;
    for (std::uint32_t doc_id : q.relevant_docs) {
      const auto& doc = col.docs[doc_id];
      for (const auto& [term, freq] : doc.terms) {
        if (std::find(q.terms.begin(), q.terms.end(), term) != q.terms.end()) {
          ++reachable;
          break;
        }
      }
    }
    EXPECT_GT(reachable * 2, q.relevant_docs.size()) << "query " << q.id;
  }
}

TEST(Synthetic, TermStringsAreStable) {
  EXPECT_EQ(SynthCollection::term_string(0), "t000000");
  EXPECT_EQ(SynthCollection::term_string(123456), "t123456");
}

TEST(Synthetic, PresetsMirrorTable3) {
  EXPECT_EQ(preset_cacm().num_docs, 3204u);
  EXPECT_EQ(preset_cacm().num_queries, 52u);
  EXPECT_EQ(preset_med().num_docs, 1033u);
  EXPECT_EQ(preset_cran().num_queries, 152u);
  EXPECT_EQ(preset_cisi().num_docs, 1460u);
  EXPECT_EQ(preset_ap89(1).num_docs, 84678u);
  EXPECT_EQ(preset_ap89(8).num_docs, 84678u / 8);
}

TEST(Placement, WeibullSumsAndCoversPeers) {
  PlacementOptions opts;
  const auto owners = place_documents(5000, 100, opts);
  EXPECT_EQ(owners.size(), 5000u);
  std::vector<std::size_t> counts(100, 0);
  for (auto o : owners) {
    ASSERT_LT(o, 100u);
    ++counts[o];
  }
  for (std::size_t i = 0; i < 100; ++i) EXPECT_GE(counts[i], 1u) << i;  // min 1 doc/peer
}

TEST(Placement, WeibullIsSkewed) {
  PlacementOptions opts;
  const auto owners = place_documents(20000, 100, opts);
  std::vector<std::size_t> counts(100, 0);
  for (auto o : owners) ++counts[o];
  const auto maxc = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(maxc, 600u);  // 3x the uniform share — heavy-tailed sharing
}

TEST(Placement, UniformIsBalanced) {
  PlacementOptions opts;
  opts.kind = PlacementKind::kUniform;
  const auto owners = place_documents(1000, 10, opts);
  std::vector<std::size_t> counts(10, 0);
  for (auto o : owners) ++counts[o];
  for (auto c : counts) EXPECT_EQ(c, 100u);
}

TEST(Placement, DeterministicForSeed) {
  PlacementOptions opts;
  EXPECT_EQ(place_documents(1000, 20, opts), place_documents(1000, 20, opts));
  PlacementOptions other = opts;
  other.seed ^= 1;
  EXPECT_NE(place_documents(1000, 20, opts), place_documents(1000, 20, other));
}

TEST(Placement, FewerDocsThanPeers) {
  PlacementOptions opts;
  const auto owners = place_documents(5, 100, opts);
  EXPECT_EQ(owners.size(), 5u);
  for (auto o : owners) EXPECT_LT(o, 100u);
}

}  // namespace
}  // namespace planetp::corpus
