#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "gossip/protocol.hpp"
#include "sim/community.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

/// \file test_lazy_gossip.cpp
/// The lazy dissemination mode (docs/PROTOCOL.md "Lazy dissemination"):
/// digest/want/serve exchanges at the protocol level, the hybrid
/// eager-first-hops transition, the two-class scheduler's slow-link rule, and
/// community-level properties — eager, lazy and hybrid must converge to
/// byte-identical directories under fault injection on the digest and want
/// legs independently, a lost want must be healed by the existing bounded
/// anti-entropy machinery, and a converged lazy community must move zero
/// rumor payload bytes.

namespace planetp::gossip {
namespace {

/// Tiny synchronous message pump (same idiom as test_gossip_protocol.cpp):
/// messages are delivered immediately, in FIFO order.
class Pump {
 public:
  Protocol& add(PeerId id, GossipConfig config = {}) {
    peers_.emplace(id, std::make_unique<Protocol>(id, config, Rng(id * 7919 + 13)));
    return *peers_.at(id);
  }

  Protocol& peer(PeerId id) { return *peers_.at(id); }

  void enqueue(PeerId from, std::vector<Protocol::Outgoing> batch) {
    for (auto& out : batch) queue_.push_back({from, std::move(out)});
  }

  std::size_t drain(TimePoint now = 0) {
    std::size_t delivered = 0;
    while (!queue_.empty()) {
      auto [from, out] = std::move(queue_.front());
      queue_.pop_front();
      auto it = peers_.find(out.to);
      if (it == peers_.end()) {
        peers_.at(from)->on_send_failed(out.to, now);
        continue;
      }
      enqueue(out.to, it->second->on_message(now, from, out.msg));
      ++delivered;
    }
    return delivered;
  }

  void round(PeerId id, TimePoint now = 0) { enqueue(id, peer(id).on_round(now)); }

 private:
  std::map<PeerId, std::unique_ptr<Protocol>> peers_;
  std::deque<std::pair<PeerId, Protocol::Outgoing>> queue_;
};

GossipConfig mode_config(RumorMode mode) {
  GossipConfig cfg;
  cfg.rumor_mode = mode;
  cfg.stop_count = 2;
  return cfg;
}

/// Two-peer pump with A holding a fresh filter-change rumor.
void pair_with_rumor(Pump& pump, const GossipConfig& cfg, LinkClass b_class = LinkClass::kFast) {
  auto& a = pump.add(1, cfg);
  auto& b = pump.add(2, cfg);
  a.quiet_start("a", LinkClass::kFast, 0, {});
  b.quiet_start("b", b_class, 0, {});
  a.bootstrap({*b.directory().find(2)});
  b.bootstrap({*a.directory().find(1)});
  a.local_filter_change(1000, 1000, {}, {}, 0);
}

TEST(LazyGossip, DigestWantServeDeliversTheBody) {
  Pump pump;
  pair_with_rumor(pump, mode_config(RumorMode::kLazy));
  auto& a = pump.peer(1);
  auto& b = pump.peer(2);

  auto batch = a.on_round(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_NE(std::get_if<RumorDigestMsg>(&batch[0].msg), nullptr)
      << "lazy mode must open with a digest, not a payload";
  pump.enqueue(1, std::move(batch));
  pump.drain();

  const PeerRecord* seen = b.directory().find(1);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->version, 2u);
  EXPECT_EQ(seen->key_count, 1000u);
  EXPECT_EQ(a.stats().payloads_sent, 0u);
  EXPECT_EQ(a.stats().digests_sent, 1u);
  EXPECT_EQ(a.stats().wants_served, 1u);
  EXPECT_EQ(b.stats().wants_sent, 1u);
  EXPECT_EQ(b.stats().want_ids_sent, 1u);
}

TEST(LazyGossip, KnownDigestsRetireTheRumorWithoutPayloads) {
  Pump pump;
  pair_with_rumor(pump, mode_config(RumorMode::kLazy));
  auto& a = pump.peer(1);

  // Round 1 delivers the body via want/serve; subsequent digests earn
  // already_knew votes until stop_count retires the rumor. Rumoring rounds
  // only (the pump has no timers): stop before the AE cadence kicks in.
  for (int round = 1; round <= 6 && a.hot_rumor_count() > 0; ++round) {
    pump.round(1);
    pump.drain();
  }
  EXPECT_EQ(a.hot_rumor_count(), 0u) << "already_knew votes must retire the rumor";
  EXPECT_EQ(a.stats().payloads_sent, 0u) << "no blind payload even across retirement";
  EXPECT_EQ(a.stats().wants_served, 1u) << "the body travelled exactly once";
}

TEST(LazyGossip, HybridPushesEagerlyThenSwitchesToDigests) {
  GossipConfig cfg = mode_config(RumorMode::kHybrid);
  cfg.eager_fanout = 1;
  Pump pump;
  pair_with_rumor(pump, cfg);
  auto& a = pump.peer(1);

  auto first = a.on_round(0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_NE(std::get_if<RumorMsg>(&first[0].msg), nullptr)
      << "transmission 1 of eager_fanout=1 must carry the payload";
  pump.enqueue(1, std::move(first));
  pump.drain();
  EXPECT_EQ(a.stats().payloads_sent, 1u);

  auto second = a.on_round(0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(std::get_if<RumorDigestMsg>(&second[0].msg), nullptr)
      << "past eager_fanout the same rumor travels as a digest";
  pump.enqueue(1, std::move(second));
  pump.drain();
  EXPECT_EQ(a.stats().payloads_sent, 1u);
  EXPECT_EQ(a.stats().digests_sent, 1u);
  EXPECT_EQ(a.stats().wants_served, 0u) << "the target already held the body";
}

TEST(LazyGossip, SlowTargetsAlwaysGetDigestsInHybrid) {
  GossipConfig cfg = mode_config(RumorMode::kHybrid);
  cfg.eager_fanout = 8;  // would stay eager for a fast target
  cfg.bandwidth_aware = true;
  Pump pump;
  pair_with_rumor(pump, cfg, LinkClass::kSlow);
  auto& a = pump.peer(1);
  auto& b = pump.peer(2);

  auto batch = a.on_round(0);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_NE(std::get_if<RumorDigestMsg>(&batch[0].msg), nullptr)
      << "two-class scheduler: slow links get ids, never blind bodies";
  pump.enqueue(1, std::move(batch));
  pump.drain();
  EXPECT_EQ(a.stats().payloads_sent, 0u);
  EXPECT_EQ(b.directory().find(1)->version, 2u) << "the want leg still delivers";
}

TEST(LazyGossip, JoinAnnouncementsTravelEagerlyEvenInLazyMode) {
  // A join rumor is the one message that carries a peer's address; a receiver
  // that only has the digest cannot even route its want back over a real
  // network (net::LiveNode drops messages to addressless peers). So
  // introductions bootstrap eagerly for their first eager_fanout
  // transmissions in every mode — filter changes stay digest-first.
  GossipConfig cfg = mode_config(RumorMode::kLazy);
  Pump pump;
  auto& a = pump.add(1, cfg);
  auto& b = pump.add(2, cfg);
  a.local_join("a", LinkClass::kFast, 0, {}, 0);
  b.quiet_start("b", LinkClass::kFast, 0, {});
  a.bootstrap({*b.directory().find(2)});

  auto batch = a.on_round(0);
  ASSERT_EQ(batch.size(), 1u);
  const auto* eager = std::get_if<RumorMsg>(&batch[0].msg);
  ASSERT_NE(eager, nullptr) << "a join announcement must carry its body";
  ASSERT_EQ(eager->rumors.size(), 1u);
  EXPECT_EQ(eager->rumors[0].kind, EventKind::kJoin);
  pump.enqueue(1, std::move(batch));
  pump.drain();
  ASSERT_NE(b.directory().find(1), nullptr);
  EXPECT_EQ(b.directory().find(1)->address, "a");

  // Once past eager_fanout transmissions the same rumor goes lazy again.
  for (int i = 0; i < cfg.eager_fanout - 1; ++i) pump.drain(), a.on_round(0);
  const auto later = a.on_round(0);
  if (!later.empty()) {
    EXPECT_EQ(std::get_if<RumorMsg>(&later[0].msg), nullptr)
        << "introductions go lazy after eager_fanout pushes";
  }
}

}  // namespace
}  // namespace planetp::gossip

namespace planetp::sim {
namespace {

gossip::PeerId pid(int i) { return static_cast<gossip::PeerId>(i); }

SimConfig sim_config(gossip::RumorMode mode, std::uint64_t seed) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.gossip.rumor_mode = mode;
  // Delta anti-entropy ships with the lazy/hybrid bench rows; run it here so
  // the fault sweep covers the token'd summary path too.
  cfg.gossip.delta_summaries = mode != gossip::RumorMode::kEager;
  return cfg;
}

/// Sorted (id, version) view of one peer's directory.
std::vector<gossip::PeerSummary> summary_of(SimCommunity& community, gossip::PeerId id) {
  return community.protocol(id).directory().summary_entries().list();
}

/// Runs one community of `peers` members through three filter changes with
/// faults injected on the digest and want legs independently (plus loss on
/// the eager payload leg), then drains. Returns the per-peer summaries.
std::vector<std::vector<gossip::PeerSummary>> run_faulted(gossip::RumorMode mode,
                                                          std::uint64_t seed, int peers,
                                                          bool* consistent) {
  SimConfig cfg = sim_config(mode, seed);
  const TimeWindow faulty{2 * kMinute, 12 * kMinute};
  cfg.faults.drop(FaultScope::any(), faulty, 0.3, false, MsgClass::kRumorDigest)
      .drop(FaultScope::any(), faulty, 0.3, false, MsgClass::kRumorWant)
      .duplicate(FaultScope::any(), faulty, 0.2, 0, kSecond, MsgClass::kRumorDigest)
      .duplicate(FaultScope::any(), faulty, 0.2, 0, kSecond, MsgClass::kRumorWant)
      .reorder(FaultScope::any(), faulty, 0.2, 0, kSecond, MsgClass::kRumorDigest)
      .reorder(FaultScope::any(), faulty, 0.2, 0, kSecond, MsgClass::kRumorWant)
      .drop(FaultScope::any(), faulty, 0.2, false, MsgClass::kRumor);

  SimCommunity community(cfg);
  for (int i = 0; i < peers; ++i) community.add_peer({link_speed::kLan45M, 1000});
  community.start_converged();

  community.run_until(3 * kMinute);
  community.inject_filter_change(pid(0), 100);
  community.run_until(4 * kMinute);
  community.inject_filter_change(pid(peers / 2), 150);
  community.run_until(5 * kMinute);
  community.inject_filter_change(pid(peers - 1), 200);
  community.run_until(45 * kMinute);

  *consistent = community.directories_consistent();
  std::vector<std::vector<gossip::PeerSummary>> out;
  out.reserve(static_cast<std::size_t>(peers));
  for (int i = 0; i < peers; ++i) out.push_back(summary_of(community, pid(i)));
  return out;
}

TEST(LazyGossip, AllModesConvergeToIdenticalDirectoriesUnderFaults) {
  constexpr int kPeers = 48;
  for (std::uint64_t seed : {7ull, 21ull, 1234ull}) {
    bool eager_ok = false, lazy_ok = false, hybrid_ok = false;
    const auto eager = run_faulted(gossip::RumorMode::kEager, seed, kPeers, &eager_ok);
    const auto lazy = run_faulted(gossip::RumorMode::kLazy, seed, kPeers, &lazy_ok);
    const auto hybrid = run_faulted(gossip::RumorMode::kHybrid, seed, kPeers, &hybrid_ok);
    EXPECT_TRUE(eager_ok) << "seed " << seed;
    EXPECT_TRUE(lazy_ok) << "seed " << seed;
    EXPECT_TRUE(hybrid_ok) << "seed " << seed;
    for (int i = 0; i < kPeers; ++i) {
      EXPECT_EQ(eager[static_cast<std::size_t>(i)], lazy[static_cast<std::size_t>(i)])
          << "lazy directory of peer " << i << " diverged (seed " << seed << ")";
      EXPECT_EQ(eager[static_cast<std::size_t>(i)], hybrid[static_cast<std::size_t>(i)])
          << "hybrid directory of peer " << i << " diverged (seed " << seed << ")";
    }
  }
}

TEST(LazyGossip, LostWantsAreHealedByAntiEntropy) {
  // Every RumorWant reply is lost, forever: the digest leg can announce ids
  // but no body is ever requested successfully. The existing anti-entropy
  // machinery (summary exchange -> PullRequest -> PullResponse) must still
  // deliver the record to everyone.
  SimConfig cfg = sim_config(gossip::RumorMode::kLazy, 99);
  cfg.faults.drop(FaultScope::any(), TimeWindow::always(), 1.0, false, MsgClass::kRumorWant);

  constexpr int kPeers = 12;
  SimCommunity community(cfg);
  for (int i = 0; i < kPeers; ++i) community.add_peer({link_speed::kLan45M, 1000});
  community.start_converged();
  community.run_until(kMinute);
  community.inject_filter_change(pid(0), 100);
  community.run_until(40 * kMinute);

  EXPECT_GT(community.faults().counters().dropped, 0u) << "the want leg must really be cut";
  EXPECT_EQ(community.stats().gossip_stats().wants_served, 0u);
  for (int i = 0; i < kPeers; ++i) {
    const gossip::PeerRecord* r = community.protocol(pid(i)).directory().find(0);
    ASSERT_NE(r, nullptr) << i;
    EXPECT_EQ(r->version, 2u) << "peer " << i << " never learned the event";
  }
}

TEST(LazyGossip, ConvergedLazyCommunityMovesNoPayloadBytes) {
  SimConfig cfg = sim_config(gossip::RumorMode::kLazy, 5);
  constexpr int kPeers = 50;
  SimCommunity community(cfg);
  for (int i = 0; i < kPeers; ++i) community.add_peer({link_speed::kLan45M, 1000});
  community.start_converged();

  // Absorb one event and drain until every hot rumor retires.
  community.run_until(kMinute);
  community.inject_filter_change(pid(3), 100);
  community.run_until(31 * kMinute);
  ASSERT_TRUE(community.directories_consistent());

  // Steady-state window: anti-entropy chatter only. Pinned to exact zeros —
  // any blind payload, re-delivery, served want or digest here is a bug.
  community.stats().reset();
  community.run_until(51 * kMinute);
  const gossip::GossipStats& window = community.stats().gossip_stats();
  EXPECT_EQ(window.payloads_sent, 0u);
  EXPECT_EQ(window.payload_bytes_sent, 0u);
  EXPECT_EQ(window.duplicate_payloads, 0u);
  EXPECT_EQ(window.wants_served, 0u);
  EXPECT_EQ(window.digests_sent, 0u) << "nothing is hot: no digests either";
  using Idx = std::underlying_type_t<MsgClass>;
  const auto& bytes = community.stats().bytes_by_type();
  EXPECT_EQ(bytes[static_cast<Idx>(MsgClass::kRumor)], 0u);
  EXPECT_EQ(bytes[static_cast<Idx>(MsgClass::kPullResponse)], 0u);
  EXPECT_EQ(bytes[static_cast<Idx>(MsgClass::kRumorDigest)], 0u);
  EXPECT_EQ(bytes[static_cast<Idx>(MsgClass::kRumorWant)], 0u);
  EXPECT_GT(bytes[static_cast<Idx>(MsgClass::kSummary)], 0u)
      << "anti-entropy keeps running underneath";
}

}  // namespace
}  // namespace planetp::sim
