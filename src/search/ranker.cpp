#include "search/ranker.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <string_view>

#include "search/vector_model.hpp"

namespace planetp::search {

namespace {

using index::CompressedIndex;
using index::InvertedIndex;
using index::Posting;
using index::TermId;

/// Upper bounds are inflated by this slack before any comparison against
/// the heap threshold. The exact per-document sum re-associates the same
/// multiplications the bounds estimate ((w_{D,t} * norm) * weight vs.
/// (w_{D,t} * weight) summed then * norm), so a bound computed with ideal
/// reals could under-estimate the floating-point score by a few ulps; a
/// relative 1e-9 dwarfs the worst-case accumulated rounding (~m * 2^-52)
/// while staying far too small to cost measurable pruning power. All
/// threshold comparisons are *strict* (<): a candidate that merely ties the
/// heap root must still be evaluated, because the ascending-DocumentId
/// tie-break can rank it ahead.
constexpr double kBoundSlack = 1.0 + 1e-9;

/// Below this many total candidate postings the pruned driver's per-term
/// bookkeeping costs more than it saves; fall back to exhaustive scoring
/// (which is also the correctness-critical path for tiny corpora).
constexpr std::uint64_t kMinPrunedPostings = 4 * CompressedIndex::kBlockPostings;

/// Below this many indexed documents the exhaustive compressed arm finishes
/// in tens of microseconds, and without direct frequency rows (gated at
/// CompressedIndex::kDirectMinDocs) the pruned driver's warm-up and survivor
/// probes cannot recoup themselves; measured break-even is around 1k docs.
constexpr std::uint32_t kMinPrunedDocs = 1024;

/// Resolved (term id, weight) pairs of a query, in lexicographic term order.
/// The canonical order makes the floating-point accumulation below bitwise
/// reproducible no matter how the caller's container iterates — so the heap
/// top-k, the full-sort path, and CompressedIndex::score all agree exactly.
struct ResolvedTerms {
  std::vector<std::pair<TermId, double>> entries;
};

/// One term's state in the pruned document-at-a-time scan.
struct PrunedCursor {
  CompressedIndex::PostingCursor cur;
  double weight = 0.0;  ///< query weight of the term
  double ub = 0.0;      ///< list_max * weight * kBoundSlack (norm folded in)
  /// doc_weight(list max freq) * weight * kBoundSlack — the *pre-norm*
  /// bound. For a candidate whose length norm is known exactly, wub * norm
  /// is far tighter than ub on bursty corpora: ub charges every candidate
  /// with the shortest document's norm, wub only with its own.
  double wub = 0.0;
};

/// The one place both bounds are derived — every pruned entry point must
/// build cursors through this so no screen ever sees a defaulted bound.
PrunedCursor make_pruned_cursor(CompressedIndex::PostingCursor cur, double weight) {
  const double ub = cur.list_max() * weight * kBoundSlack;
  const double wub = doc_weight(cur.list_max_freq()) * weight * kBoundSlack;
  return PrunedCursor{std::move(cur), weight, ub, wub};
}

/// Per-thread scratch reused across queries: the eval hot path performs no
/// per-query allocations in steady state (vectors keep their capacity, the
/// weights map keeps its buckets).
struct RankScratch {
  std::vector<std::pair<std::string_view, double>> weighted;  ///< lex-sorted query
  std::vector<std::string_view> sorted_terms;
  ResolvedTerms resolved;
  std::vector<double> acc;
  std::vector<std::uint64_t> bm;  ///< accumulated-slot bitmap (pruned scan)
  std::vector<std::uint32_t> touched;
  std::vector<ScoredDoc> heap;
  std::vector<PrunedCursor> cursors;       ///< lexicographic term order
  std::vector<std::uint32_t> by_ub;        ///< cursor indices, descending ub
  std::vector<double> tail_ub;             ///< suffix sums over by_ub
  std::vector<double> tail_wub;            ///< pre-norm suffix sums over by_ub
  std::vector<char> ess;                   ///< essential flags, lex order
  std::vector<std::uint32_t> ess_idx;      ///< essential cursor indices
  std::vector<std::uint32_t> blk_ptr;      ///< pass-1 per-list range pointers
  std::vector<double> lb;                  ///< tier-2 per-list bounds, lex order
  std::vector<double> contrib;             ///< staged-eval exact contributions
  std::vector<std::uint32_t> eval_order;   ///< non-essential probe order
  std::vector<PrunedCursor> eval_cursors;  ///< survivor-probe cursor copies
  std::vector<PrunedCursor> warm_cursors;  ///< theta warm-up scratch copies
  std::vector<std::uint32_t> warm;         ///< dense ids scored by the warm-up
  std::size_t warm_pos = 0;                ///< main-scan pointer into warm
};

RankScratch& scratch() {
  static thread_local RankScratch s;
  return s;
}

template <typename WeightFn>
void resolve_term(const InvertedIndex& idx, std::string_view term, ResolvedTerms& out,
                  WeightFn&& weight_of) {
  const TermId id = idx.term_id(term);
  if (id == index::kInvalidTermId) return;
  for (const auto& [prev, w] : out.entries) {
    if (prev == id) return;  // queries hold a handful of terms: linear dedup
  }
  const double weight = weight_of(id);
  if (weight <= 0.0) return;
  out.entries.emplace_back(id, weight);
}

/// Accumulate eq. 2 partial sums into a dense per-slot array. Returns the
/// touched slots (each once, in first-touch order) in \p touched.
void accumulate(const InvertedIndex& idx, const ResolvedTerms& terms, std::vector<double>& acc,
                std::vector<std::uint32_t>& touched) {
  acc.assign(idx.doc_slot_count(), 0.0);
  touched.clear();
  for (const auto& [term, weight] : terms.entries) {
    const std::vector<Posting>& postings = idx.postings_by_id(term);
    const std::vector<std::uint32_t>& slots = idx.posting_slots(term);
    for (std::size_t i = 0; i < postings.size(); ++i) {
      const std::uint32_t slot = slots[i];
      // Contributions are strictly positive (weight > 0, freq >= 1), so an
      // exact zero means "first touch".
      if (acc[slot] == 0.0) touched.push_back(slot);
      acc[slot] += score_contribution(postings[i].term_freq, weight);
    }
  }
}

ScoredDoc scored_at(const InvertedIndex& idx, std::uint32_t slot, double sum) {
  return ScoredDoc{idx.doc_at_slot(slot), sum * length_norm(idx.doc_length_at_slot(slot))};
}

/// Deduplicated (term, weight) pairs in lexicographic term order — the
/// string-keyed analogue of ResolvedTerms for snapshot scoring, where terms
/// resolve by string lookup instead of TermId.
void sort_weighted_terms(const std::unordered_map<std::string, double>& term_weights,
                         std::vector<std::pair<std::string_view, double>>& sorted) {
  sorted.clear();
  sorted.reserve(term_weights.size());
  for (const auto& [term, weight] : term_weights) {
    if (weight > 0.0) sorted.emplace_back(term, weight);
  }
  std::sort(sorted.begin(), sorted.end());
}

/// Accumulate eq. 2 partial sums over a snapshot's slot domain. Per
/// document, contributions arrive in the same lexicographic term order as
/// accumulate() above (a document has at most one live posting per term),
/// so the per-slot sums are bitwise identical to a sequential store's.
void accumulate_snapshot(const index::EpochSnapshot& snap,
                         const std::vector<std::pair<std::string_view, double>>& terms,
                         std::vector<double>& acc, std::vector<std::uint32_t>& touched) {
  acc.assign(snap.slot_count(), 0.0);
  touched.clear();
  for (const auto& [term, weight] : terms) {
    const double w = weight;
    snap.for_each_posting(term, [&acc, &touched, w](std::uint32_t slot, std::uint32_t freq) {
      if (acc[slot] == 0.0) touched.push_back(slot);
      acc[slot] += score_contribution_memo(freq, w);
    });
  }
}

ScoredDoc snapshot_scored_at(const index::EpochSnapshot& snap, std::uint32_t slot, double sum) {
  return ScoredDoc{snap.doc_at_slot(slot), sum * length_norm(snap.doc_length_at_slot(slot))};
}

/// Offer \p cand to a bounded min-heap of the k best seen so far (root =
/// worst kept). ranks_before is a strict total order (docs are distinct),
/// so the kept set is exactly the best k regardless of offer order.
bool heap_offer(std::vector<ScoredDoc>& heap, std::size_t k, const ScoredDoc& cand) {
  if (heap.size() < k) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end(), ranks_before);
    return true;
  }
  if (ranks_before(cand, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), ranks_before);
    heap.back() = cand;
    std::push_heap(heap.begin(), heap.end(), ranks_before);
    return true;
  }
  return false;
}

/// Bounded top-k selection over touched slots; byte-identical to sorting
/// all matches and truncating.
template <typename ScoreAt>
std::vector<ScoredDoc> select_top_k(const std::vector<std::uint32_t>& touched, std::size_t k,
                                    ScoreAt&& scored) {
  std::vector<ScoredDoc> heap;
  heap.reserve(std::min(k, touched.size()));
  for (const std::uint32_t slot : touched) heap_offer(heap, k, scored(slot));
  std::sort(heap.begin(), heap.end(), ranks_before);
  return heap;
}

/// The rank-safe block-max pruned scan over a block-structured
/// CompressedIndex (docs/INDEX.md "Block-max pruning"). Inputs:
///   - s.cursors: the query's non-empty posting cursors in lexicographic
///     term order, ub = list_max * weight * kBoundSlack;
///   - s.heap: the bounded min-heap, possibly pre-seeded with *exact*
///     scores from outside the base (pending epoch segments);
///   - is_dead(doc): drops tombstone-killed base occurrences per candidate.
/// On return s.heap holds the best k of {seeds} ∪ {live base documents},
/// unsorted.
///
/// Organization (MaxScore in Turtle & Flood's term-at-a-time form, with
/// Block-Max-WAND's per-block bounds layered on):
///   1. theta warm-up — score the best-ub list's best block exactly so the
///      threshold opens near its final value;
///   2. partition the lists: the non-essential suffix (by ascending ub)
///      cannot lift a document above theta on its own;
///   3. pass 1 folds only the essential lists through the exhaustive arm's
///      accumulator loop;
///   4. pass 2 screens every touched slot against theta — first with the
///      precomputed non-essential bound, then (zero-decode) with the
///      candidate block's max via skip entries — and re-scores the few
///      survivors exactly.
/// Every surviving document is scored by accumulating score_contribution
/// in lexicographic term order from 0.0 and multiplying by its length norm
/// once — bitwise the exhaustive path's arithmetic — and every skip
/// decision compares an inflated upper bound *strictly* against the
/// threshold, so no document the exhaustive path would keep is ever
/// dropped (rank safety; the property test pins byte-identity).
template <typename DeadFn>
void pruned_base_scan(const CompressedIndex& ci, std::size_t k, DeadFn&& is_dead,
                      RankScratch& s, PruneStats* stats) {
  const std::size_t m = s.cursors.size();
  if (m == 0 || k == 0) return;

  // MaxScore order: cursor indices by descending upper bound. tail_ub[i] is
  // the combined bound of the i-th..last lists in that order.
  s.by_ub.resize(m);
  for (std::size_t i = 0; i < m; ++i) s.by_ub[i] = static_cast<std::uint32_t>(i);
  std::sort(s.by_ub.begin(), s.by_ub.end(), [&s](std::uint32_t a, std::uint32_t b) {
    if (s.cursors[a].ub != s.cursors[b].ub) return s.cursors[a].ub > s.cursors[b].ub;
    return a < b;
  });
  s.tail_ub.assign(m + 1, 0.0);
  s.tail_wub.assign(m + 1, 0.0);
  for (std::size_t i = m; i-- > 0;) {
    s.tail_ub[i] = s.tail_ub[i + 1] + s.cursors[s.by_ub[i]].ub;
    s.tail_wub[i] = s.tail_wub[i + 1] + s.cursors[s.by_ub[i]].wub;
  }

  // Essential lists: by_ub[0..ne_start). The non-essential suffix's combined
  // bound sits strictly below the threshold, so a document matching only
  // non-essential terms can never enter the heap — candidates are drawn
  // from essential lists only. The threshold never decreases, so ne_start
  // only ever moves left (refined from its previous value).
  std::size_t ne_start = m;
  auto refresh_partition = [&]() {
    if (s.heap.size() < k) return;
    const double theta = s.heap.front().score;
    while (ne_start > 0 && s.tail_ub[ne_start - 1] < theta) --ne_start;
  };
  refresh_partition();

  // Theta warm-up. The main scan meets candidates in ascending dense
  // order, so with a cold heap the first k enter uncontested and the
  // bounds only start cutting once the threshold has risen — by which
  // point a hot essential list is half decoded. Spend a few blocks up
  // front instead: round r walks the best block of the r-th-highest-ub
  // list on *copies* of the cursors and scores its documents exactly
  // (same lex-order arithmetic). Each round seeds the heap with near-final
  // scores, raising the threshold and often demoting the next list to
  // non-essential — rounds stop as soon as the partition has shrunk past
  // the round's list, so pass 1 usually folds a single list. Every dense
  // id a warmed block holds is recorded (sorted, deduplicated) and skipped
  // by the main scan — each was either offered exactly, abandoned under a
  // valid bound, or tombstoned, and the heap holds no duplicates, so
  // byte-identity is preserved.
  s.warm.clear();
  s.warm_pos = 0;
  if (k > 0) {
    constexpr std::size_t kMaxWarmRounds = 4;
    std::size_t sorted_end = 0;  // s.warm[0..sorted_end) is sorted (prior rounds)
    for (std::size_t r = 0; r < m && r < kMaxWarmRounds; ++r) {
      // Once the r-th list is already non-essential, further rounds only
      // nudge theta without shrinking pass 1 — not worth their blocks.
      if (ne_start <= r) break;
      const std::size_t ne_before = ne_start;
      // Fresh copies per round: block dense ranges of different lists may
      // overlap, and the probe/eval cursors only ever seek forward.
      s.warm_cursors.assign(s.cursors.begin(), s.cursors.end());
      index::CompressedIndex::PostingCursor& c0 = s.warm_cursors[s.by_ub[r]].cur;
      std::uint32_t bstar = 0;
      for (std::uint32_t b = 1; b < c0.num_blocks(); ++b) {
        if (c0.block_max(b) > c0.block_max(bstar)) bstar = b;
      }
      if (bstar > 0) c0.seek_to(c0.block_last(bstar - 1) + 1);
      for (; !c0.done() && c0.current_block() == bstar; c0.next()) {
        const std::uint32_t dw = c0.dense();
        // Already offered (or abandoned under a valid bound) by an earlier
        // round's block — a document is never offered twice.
        if (std::binary_search(s.warm.begin(), s.warm.begin() + sorted_end, dw)) continue;
        s.warm.push_back(dw);
        if (is_dead(ci.doc_at(dw))) continue;
        const double norm = ci.doc_norm_at(dw);
        if (s.heap.size() >= k) {
          // Zero-decode norm-aware screen, same bounds as the main scan's
          // tier 2: exact contributions where a cursor already sits on dw,
          // the block's max-frequency weight where it lags — all pre-norm,
          // multiplied once by dw's own (exact) length norm.
          const double theta = s.heap.front().score;
          double bound = 0.0;  // normalized domain
          for (std::size_t i = 0; i < m; ++i) {
            const PrunedCursor& c = s.warm_cursors[i];
            if (c.cur.direct()) {
              bound += score_contribution_memo(c.cur.freq_at(dw), c.weight) * norm;
              continue;
            }
            if (c.cur.done()) continue;
            const std::uint32_t at = c.cur.dense();
            if (at == dw) {
              bound += score_contribution_memo(c.cur.term_freq(), c.weight) * norm;
            } else if (at < dw) {
              const std::uint32_t b = c.cur.find_block(dw);
              if (b == c.cur.num_blocks()) continue;
              // Two valid per-block bounds: the block max contribution (norm
              // of the block's best doc folded in) and the block max
              // frequency at *this* candidate's norm. Whichever is tighter.
              bound += std::min(c.cur.block_max(b) * c.weight,
                                doc_weight_memo(c.cur.block_max_freq(b)) * c.weight * norm);
            }
          }
          if (bound * kBoundSlack < theta) {
            if (stats) ++stats->docs_abandoned;
            continue;
          }
        }
        double sum = 0.0;  // exact lex-order accumulation, as everywhere
        for (std::size_t i = 0; i < m; ++i) {
          PrunedCursor& c = s.warm_cursors[i];
          if (c.cur.direct()) {
            sum += score_contribution_memo(c.cur.freq_at(dw), c.weight);
            continue;
          }
          if (c.cur.done()) continue;
          if (c.cur.dense() < dw) {
            c.cur.seek_to(dw);
            if (c.cur.done() || c.cur.dense() != dw) continue;
          } else if (c.cur.dense() > dw) {
            continue;
          }
          sum += score_contribution_memo(c.cur.term_freq(), c.weight);
        }
        if (stats) ++stats->docs_evaluated;
        if (heap_offer(s.heap, k, ScoredDoc{ci.doc_at(dw), sum * norm})) refresh_partition();
      }
      if (stats) {
        for (std::size_t i = 0; i < m; ++i) {
          stats->postings_decoded +=
              s.warm_cursors[i].cur.postings_decoded() - s.cursors[i].cur.postings_decoded();
          stats->blocks_skipped +=
              s.warm_cursors[i].cur.blocks_jumped() - s.cursors[i].cur.blocks_jumped();
        }
      }
      std::inplace_merge(s.warm.begin(), s.warm.begin() + sorted_end, s.warm.end());
      sorted_end = s.warm.size();
      (void)ne_before;
    }
  }

  // Freeze the partition for the scan: the screen below charges exactly
  // the lists pass 1 leaves out, even as theta keeps rising.
  const std::size_t ne = ne_start;
  const double ne_bound = s.tail_ub[ne];    // norm folded in (worst-case doc)
  const double ne_wbound = s.tail_wub[ne];  // pre-norm (candidate's own norm)

  // Pass 1 — term-at-a-time over the essential lists only (Turtle &
  // Flood's original MaxScore organization) — *except* the largest
  // essential list, the "stream" list. Folding it into the accumulator
  // would materialize every one of its postings as a candidate slot, only
  // for the scan below to re-read each through another cache round-trip;
  // instead its postings are screened inline as they decode, interleaved
  // (in ascending dense order, so survivor probes stay forward-only) with
  // the candidates the smaller essential lists accumulated. A document
  // matching only non-essential lists is bounded by ne_bound < theta, so
  // it can never enter the heap — candidates are exactly {accumulated
  // slots} ∪ {stream postings}.
  s.ess.assign(m, 0);
  for (std::size_t j = 0; j < ne; ++j) s.ess[s.by_ub[j]] = 1;
  std::size_t stream = m;
  for (std::size_t j = 0; j < ne; ++j) {
    const std::uint32_t i = s.by_ub[j];
    if (stream == m || s.cursors[i].cur.size() > s.cursors[stream].cur.size()) stream = i;
  }
  // Survivors are re-scored exactly from untouched cursor copies; pass 1
  // and the stream consume the originals.
  s.eval_cursors.assign(s.cursors.begin(), s.cursors.end());
  std::uint64_t eval_dec0 = 0;
  std::uint64_t eval_jmp0 = 0;
  for (const PrunedCursor& c : s.eval_cursors) {
    eval_dec0 += c.cur.postings_decoded();
    eval_jmp0 += c.cur.blocks_jumped();
  }
  // With a single essential list everything streams: no accumulator (or
  // clearing) needed at all.
  const bool have_acc = ne > 1;
  const std::uint32_t nwords = (static_cast<std::uint32_t>(ci.num_documents()) + 63) / 64;
  if (have_acc) {
    s.acc.assign(ci.num_documents(), 0.0);
    s.bm.assign(nwords, 0);  // touched-slot bitmap, drained in dense order
  }
  const bool can_skip_blocks = s.heap.size() >= k;
  const double theta0 = can_skip_blocks ? s.heap.front().score : 0.0;
  s.ess_idx.clear();
  for (std::size_t j = 0; j < ne; ++j) s.ess_idx.push_back(s.by_ub[j]);
  for (std::size_t i = 0; i < m; ++i) {
    if (!s.ess[i] || i == stream) continue;
    PrunedCursor& c = s.cursors[i];
    // Per-block viability, even for essential lists: a document inside
    // block b of this list scores at most the block's own max contribution,
    // plus — for every *other* essential list — the largest block max among
    // that list's blocks intersecting b's dense range (the document, if
    // present there at all, sits in one of them), plus the non-essential
    // tail bound. When that total sits below the warm threshold the whole
    // block is globally dead — no membership pattern across other lists
    // can rescue any of its documents — so pass 1 skips it without
    // decoding. theta never decreases after the warm-up, so the decision
    // stays valid for the rest of the query. Documents in skipped blocks
    // may still be touched through another list's viable block with a
    // partial accumulator; the screens below may then under-estimate
    // them, but abandoning a globally-dead document is sound no matter
    // what bound the screen used, and exact evaluation always re-scores
    // survivors from fresh cursors.
    s.blk_ptr.assign(m, 0);  // per-other-list range pointer, advances with b
    std::uint32_t b = c.cur.current_block();
    const std::uint32_t nb = c.cur.num_blocks();
    while (!c.cur.done()) {
      if (can_skip_blocks) {
        std::uint32_t vb = b;
        for (; vb < nb; ++vb) {
          const std::uint32_t lo = vb == 0 ? 0 : c.cur.block_last(vb - 1) + 1;
          const std::uint32_t hi = c.cur.block_last(vb);
          double cover = s.tail_ub[ne];
          for (const std::uint32_t o : s.ess_idx) {
            if (o == i) continue;
            // Skip-table-only range max; the pointer never rewinds because
            // lo grows with vb. Positions of consumed cursors don't matter
            // — block metadata is position-independent.
            const auto& oc = s.cursors[o].cur;
            std::uint32_t& p = s.blk_ptr[o];
            const std::uint32_t onb = oc.num_blocks();
            while (p < onb && oc.block_last(p) < lo) ++p;
            double mx = 0.0;
            for (std::uint32_t q = p; q < onb; ++q) {
              if ((q == 0 ? 0 : oc.block_last(q - 1) + 1) > hi) break;
              mx = std::max(mx, oc.block_max(q));
            }
            cover += mx * s.cursors[o].weight * kBoundSlack;
          }
          if ((c.cur.block_max(vb) * c.weight + cover) * kBoundSlack >= theta0) break;
        }
        if (vb == nb) break;  // remainder of the list is globally dead
        if (vb != b) {
          c.cur.seek_to(c.cur.block_last(vb - 1) + 1);
          b = vb;
          if (c.cur.done()) break;
        }
      }
      for (; !c.cur.done() && c.cur.current_block() == b; c.cur.next()) {
        const std::uint32_t slot = c.cur.dense();
        s.bm[slot >> 6] |= std::uint64_t{1} << (slot & 63);
        s.acc[slot] += score_contribution_memo(c.cur.term_freq(), c.weight);
      }
      ++b;
    }
  }

  // Non-essential probe order for the staged evaluation below: direct
  // lists first (O(1) probes that also refund their exact tier-2 bound),
  // then ascending document frequency, so the costliest cursor seeks are
  // reached only by candidates every cheaper list failed to kill.
  s.eval_order.clear();
  for (std::size_t j = ne; j < m; ++j) s.eval_order.push_back(s.by_ub[j]);
  std::sort(s.eval_order.begin(), s.eval_order.end(), [&s](std::uint32_t a, std::uint32_t b) {
    const bool da = s.cursors[a].cur.direct();
    const bool db = s.cursors[b].cur.direct();
    if (da != db) return da;
    if (s.cursors[a].cur.size() != s.cursors[b].cur.size()) {
      return s.cursors[a].cur.size() < s.cursors[b].cur.size();
    }
    return a < b;
  });
  s.lb.assign(m, 0.0);

  // Pass 2 — visit every candidate in ascending dense order (the survivor
  // probes seek forward-only), screening each against the live threshold
  // before paying for an exact evaluation. \p known is the candidate's
  // partial essential sum (accumulated lists plus its stream contribution);
  // \p sfreq its stream-list term frequency (0 = not a stream posting).
  auto visit = [&](std::uint32_t slot, double known, std::uint32_t sfreq) {
    // Slots the warm-up blocks already accounted for: scored exactly (in
    // the heap if they rank) or abandoned under a valid bound — a
    // document is never offered twice.
    while (s.warm_pos < s.warm.size() && s.warm[s.warm_pos] < slot) ++s.warm_pos;
    if (s.warm_pos < s.warm.size() && s.warm[s.warm_pos] == slot) return;
    const double norm = ci.doc_norm_at(slot);
    bool bounded = false;
    double theta = 0.0;
    double cur = 0.0;  // live upper bound on the score, normalized domain
    if (s.heap.size() >= k) {
      theta = s.heap.front().score;
      // Rank-safe: the slot's essential partial sum re-associates within
      // kBoundSlack of the exact lex-order sum, and the non-essential
      // suffix contributes at most doc_weight(list max freq) * weight per
      // list — all pre-norm, multiplied once by the candidate's *exact*
      // length norm. That norm-awareness is the screen's teeth: the
      // norm-folded tail_ub charges every candidate with the corpus's
      // shortest document, this charges each with its own — tighter for
      // long documents; tail_ub stays tighter for short ones, so the
      // screen abandons on whichever bound falls below theta. (tail_ub
      // alone still covers documents pass 1 never touched — their norm is
      // unknown, see the partition above.) Strict <, so ties survive.
      const double screened = known * norm * kBoundSlack;
      if (screened + ne_bound < theta || screened + ne_wbound * norm * kBoundSlack < theta) {
        if (stats) ++stats->docs_abandoned;
        return;
      }
      if (ne < m) {
        // Tier-2 screen, still zero-decode: a bursty posting somewhere in
        // a non-essential list keeps its list-level bound loose, but the
        // block that could actually hold this slot is bounded by its own
        // (usually much smaller) block max frequency — a pure skip-entry
        // lookup — and a direct list answers with its *exact* contribution
        // in O(1). Refining every non-essential bound *before* any block
        // is decoded keeps survivor probes from dragging whole hot lists
        // through the decoder. Each list's bound is kept for the staged
        // evaluation below, which refunds it as probes turn exact.
        bounded = true;
        cur = known * norm;  // normalized domain
        for (std::size_t j = ne; j < m; ++j) {
          const std::uint32_t i = s.by_ub[j];
          const PrunedCursor& c = s.eval_cursors[i];
          double b_i = 0.0;
          if (c.cur.direct()) {
            b_i = score_contribution_memo(c.cur.freq_at(slot), c.weight) * norm;
          } else if (!c.cur.done()) {
            const std::uint32_t at = c.cur.dense();
            if (at == slot) {
              b_i = score_contribution_memo(c.cur.term_freq(), c.weight) * norm;
            } else if (at < slot) {
              const std::uint32_t b = c.cur.find_block(slot);
              if (b != c.cur.num_blocks()) {
                // Tighter of the block's two bounds (see the warm-up screen).
                b_i = std::min(c.cur.block_max(b) * c.weight,
                               doc_weight_memo(c.cur.block_max_freq(b)) * c.weight * norm);
              }
            }
          }
          s.lb[i] = b_i;
          cur += b_i;
        }
        if (cur * kBoundSlack < theta) {
          if (stats) {
            ++stats->docs_abandoned;
            ++stats->blocks_skipped;
          }
          return;
        }
      }
    }
    // Tombstones are only consulted for candidates that survived every
    // screen: the screens are score-only (a dead document abandoned by a
    // bound was going to be dropped anyway), and the per-candidate doc-id
    // load + liveness probe is pure overhead for the ~97% the screens kill.
    if (is_dead(ci.doc_at(slot))) return;
    // Staged exact evaluation. The reported score must accumulate every
    // matching list in global lexicographic order from 0.0, so exact
    // contributions are collected per cursor first and summed at the end —
    // the arithmetic is byte-identical to the exhaustive path no matter
    // what order the probes resolved in. Probe order: essential lists
    // first (their aggregate is already known, the probes mostly re-read
    // warm cursor positions or direct arrays), then non-essential lists
    // cheapest-first, replacing each tier-2 bound with the exact
    // contribution and re-checking theta — the huge head lists at the end
    // are only ever decoded for documents that are still alive.
    s.contrib.assign(m, 0.0);
    double exact_ess = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (!s.ess[i]) continue;
      if (i == stream) {
        // The stream posting's frequency arrived with the visit — exact,
        // no probe. sfreq == 0 means the candidate is not in the stream
        // list at all (term frequencies in postings are >= 1).
        const double ex = sfreq == 0
                              ? 0.0
                              : score_contribution_memo(sfreq, s.cursors[i].weight);
        s.contrib[i] = ex;
        exact_ess += ex;
        continue;
      }
      PrunedCursor& c = s.eval_cursors[i];
      double ex = 0.0;
      if (c.cur.direct()) {
        ex = score_contribution_memo(c.cur.freq_at(slot), c.weight);
      } else if (!c.cur.done()) {
        if (c.cur.dense() < slot) c.cur.seek_to(slot);
        if (!c.cur.done() && c.cur.dense() == slot) {
          ex = score_contribution_memo(c.cur.term_freq(), c.weight);
        }
      }
      s.contrib[i] = ex;
      exact_ess += ex;
    }
    if (bounded) {
      // known aggregated the same essential contributions (equal when the
      // accumulator is complete; smaller only for globally-dead documents
      // touched through a partial list, where growing the bound is sound).
      cur += (exact_ess - known) * norm;
      if (cur * kBoundSlack < theta) {
        if (stats) ++stats->docs_abandoned;
        return;
      }
    }
    for (const std::uint32_t i : s.eval_order) {
      PrunedCursor& c = s.eval_cursors[i];
      double ex = 0.0;
      if (c.cur.direct()) {
        ex = score_contribution_memo(c.cur.freq_at(slot), c.weight);
      } else if (!c.cur.done()) {
        if (c.cur.dense() < slot) c.cur.seek_to(slot);
        if (!c.cur.done() && c.cur.dense() == slot) {
          ex = score_contribution_memo(c.cur.term_freq(), c.weight);
        }
      }
      s.contrib[i] = ex;
      if (bounded) {
        cur += ex * norm - s.lb[i];
        if (cur * kBoundSlack < theta) {
          if (stats) ++stats->docs_abandoned;
          return;
        }
      }
    }
    double sum = 0.0;  // exact lex-order accumulation, as everywhere
    for (std::size_t i = 0; i < m; ++i) sum += s.contrib[i];
    if (stats) ++stats->docs_evaluated;
    heap_offer(s.heap, k, ScoredDoc{ci.doc_at(slot), sum * norm});
  };
  // Interleaved candidate driver. Accumulated slots are drained from the
  // bitmap (word-at-a-time, countr_zero per set bit — no sort, no dense
  // accumulator sweep) strictly ahead of the stream cursor, so the overall
  // visit order ascends and a slot in both sources is visited exactly once,
  // with its stream contribution folded in.
  std::uint32_t dwd = 0;
  std::uint64_t wbits = have_acc && nwords > 0 ? s.bm[0] : 0;
  auto drain_below = [&](std::uint32_t limit) {
    if (!have_acc) return;
    while (true) {
      while (wbits == 0) {
        if (++dwd >= nwords) return;
        wbits = s.bm[dwd];
      }
      const std::uint32_t u = dwd * 64 + static_cast<std::uint32_t>(std::countr_zero(wbits));
      if (u >= limit) return;
      wbits &= wbits - 1;
      visit(u, s.acc[u], 0);
    }
  };
  if (stream != m) {
    PrunedCursor& c = s.cursors[stream];
    s.blk_ptr.assign(m, 0);
    std::uint32_t b = c.cur.current_block();
    const std::uint32_t nb = c.cur.num_blocks();
    while (!c.cur.done()) {
      // Same per-block global viability as pass 1, but against the *live*
      // threshold — streaming raises theta as it goes, so late blocks face
      // a stricter test than theta0 (sound: theta never decreases). A
      // skipped block's accumulated slots still drain below; their screens
      // use a partial sum, which only under-estimates globally-dead
      // documents — abandoning those is sound under any bound.
      if (s.heap.size() >= k) {
        const double th = s.heap.front().score;
        std::uint32_t vb = b;
        for (; vb < nb; ++vb) {
          const std::uint32_t lo = vb == 0 ? 0 : c.cur.block_last(vb - 1) + 1;
          const std::uint32_t hi = c.cur.block_last(vb);
          double cover = s.tail_ub[ne];
          for (const std::uint32_t o : s.ess_idx) {
            if (o == stream) continue;
            const auto& oc = s.cursors[o].cur;
            std::uint32_t& p = s.blk_ptr[o];
            const std::uint32_t onb = oc.num_blocks();
            while (p < onb && oc.block_last(p) < lo) ++p;
            double mx = 0.0;
            for (std::uint32_t q = p; q < onb; ++q) {
              if ((q == 0 ? 0 : oc.block_last(q - 1) + 1) > hi) break;
              mx = std::max(mx, oc.block_max(q));
            }
            cover += mx * s.cursors[o].weight * kBoundSlack;
          }
          if ((c.cur.block_max(vb) * c.weight + cover) * kBoundSlack >= th) break;
        }
        if (vb == nb) break;  // remainder of the stream is globally dead
        if (vb != b) {
          c.cur.seek_to(c.cur.block_last(vb - 1) + 1);
          b = vb;
          if (c.cur.done()) break;
        }
      }
      for (; !c.cur.done() && c.cur.current_block() == b; c.cur.next()) {
        const std::uint32_t slot = c.cur.dense();
        drain_below(slot);
        // The slot may also be accumulated — consume its bit so the drain
        // never re-visits it.
        if (dwd == (slot >> 6)) wbits &= ~(std::uint64_t{1} << (slot & 63));
        const std::uint32_t f = c.cur.term_freq();
        const double prior = have_acc ? s.acc[slot] : 0.0;
        visit(slot, prior + score_contribution_memo(f, c.weight), f);
      }
      ++b;
    }
  }
  drain_below(std::numeric_limits<std::uint32_t>::max());

  if (stats) {
    for (const PrunedCursor& c : s.cursors) {
      stats->postings_decoded += c.cur.postings_decoded();
      stats->blocks_skipped += c.cur.blocks_jumped();
    }
    for (const PrunedCursor& c : s.eval_cursors) {
      stats->postings_decoded += c.cur.postings_decoded();
      stats->blocks_skipped += c.cur.blocks_jumped();
    }
    stats->postings_decoded -= eval_dec0;
    stats->blocks_skipped -= eval_jmp0;
  }
}

/// Build the query's cursors (one hash probe per term — the cursor carries
/// df, cf, and the list bound) from lex-sorted (term, weight) pairs.
/// Returns the total candidate postings.
std::uint64_t build_cursors(const CompressedIndex& ci, RankScratch& s) {
  s.cursors.clear();
  std::uint64_t total = 0;
  for (const auto& [term, weight] : s.weighted) {
    auto cur = ci.postings(term);
    if (cur.done()) continue;
    total += cur.size();
    s.cursors.push_back(make_pruned_cursor(std::move(cur), weight));
  }
  return total;
}

/// Exhaustive cursor scoring over a CompressedIndex (the fallback arm):
/// accumulator array + bounded heap, byte-identical to ci.score + truncate.
std::vector<ScoredDoc> compressed_exhaustive_top_k(const CompressedIndex& ci, std::size_t k,
                                                   RankScratch& s) {
  s.acc.assign(ci.num_documents(), 0.0);
  s.touched.clear();
  for (PrunedCursor& c : s.cursors) {
    for (; !c.cur.done(); c.cur.next()) {
      const std::uint32_t dense = c.cur.dense();
      if (s.acc[dense] == 0.0) s.touched.push_back(dense);
      s.acc[dense] += score_contribution_memo(c.cur.term_freq(), c.weight);
    }
  }
  return select_top_k(s.touched, k, [&](std::uint32_t dense) {
    return ScoredDoc{ci.doc_at(dense), s.acc[dense] * ci.doc_norm_at(dense)};
  });
}

}  // namespace

std::vector<ScoredDoc> score_documents(
    const index::InvertedIndex& idx,
    const std::unordered_map<std::string, double>& term_weights) {
  RankScratch& s = scratch();
  // Canonical accumulation order: lexicographic by term.
  s.weighted.clear();
  s.weighted.reserve(term_weights.size());
  for (const auto& [term, weight] : term_weights) s.weighted.emplace_back(term, weight);
  std::sort(s.weighted.begin(), s.weighted.end());

  s.resolved.entries.clear();
  for (const auto& [term, weight] : s.weighted) {
    const double w = weight;
    resolve_term(idx, term, s.resolved, [&](TermId) { return w; });
  }

  accumulate(idx, s.resolved, s.acc, s.touched);

  std::vector<ScoredDoc> out;
  out.reserve(s.touched.size());
  for (const std::uint32_t slot : s.touched) {
    out.push_back(scored_at(idx, slot, s.acc[slot]));
  }
  std::sort(out.begin(), out.end(), ranks_before);
  return out;
}

void TfIdfRanker::idf_weights(const std::vector<std::string>& terms,
                              std::unordered_map<std::string, double>& out) const {
  out.clear();
  for (const std::string& t : terms) {
    if (out.contains(t)) continue;
    out.emplace(t, idf(index_->num_documents(), index_->collection_frequency(t)));
  }
}

std::unordered_map<std::string, double> TfIdfRanker::idf_weights(
    const std::vector<std::string>& terms) const {
  std::unordered_map<std::string, double> weights;
  idf_weights(terms, weights);
  return weights;
}

std::vector<ScoredDoc> TfIdfRanker::top_k(const std::vector<std::string>& terms, std::size_t k,
                                          PruneStats* stats) const {
  if (k == 0) return {};
  const InvertedIndex& idx = *index_;
  RankScratch& s = scratch();
  // Same canonical lexicographic order as score_documents, so the heap path
  // scores every document bitwise identically to the sort path.
  s.sorted_terms.assign(terms.begin(), terms.end());
  std::sort(s.sorted_terms.begin(), s.sorted_terms.end());
  s.sorted_terms.erase(std::unique(s.sorted_terms.begin(), s.sorted_terms.end()),
                       s.sorted_terms.end());

  if (accel_ != nullptr) {
    // Pruned path over the accelerator snapshot. IDF inputs come from the
    // accelerator's statistics — equal to the live index's by the sync
    // contract — and each term costs one hash probe (the cursor carries cf
    // and the list bound).
    const CompressedIndex& ci = *accel_;
    s.weighted.clear();
    s.cursors.clear();
    std::uint64_t total = 0;
    for (const std::string_view term : s.sorted_terms) {
      auto cur = ci.postings(term);
      if (cur.done()) continue;
      const double weight = idf(ci.num_documents(), cur.collection_freq());
      if (weight <= 0.0) continue;
      total += cur.size();
      s.weighted.emplace_back(term, weight);
      s.cursors.push_back(make_pruned_cursor(std::move(cur), weight));
    }
    if (k >= ci.num_documents() || total < kMinPrunedPostings ||
        ci.num_documents() < kMinPrunedDocs) {
      if (stats) ++stats->prune_fallbacks;
      return compressed_exhaustive_top_k(ci, k, s);
    }
    if (stats) ++stats->pruned_queries;
    s.heap.clear();
    pruned_base_scan(ci, k, [](index::DocumentId) { return false; }, s, stats);
    std::vector<ScoredDoc> out(s.heap.begin(), s.heap.end());
    std::sort(out.begin(), out.end(), ranks_before);
    return out;
  }

  s.resolved.entries.clear();
  for (const std::string_view term : s.sorted_terms) {
    resolve_term(idx, term, s.resolved, [&](TermId id) {
      return idf(idx.num_documents(), idx.collection_frequency_by_id(id));
    });
  }

  accumulate(idx, s.resolved, s.acc, s.touched);
  return select_top_k(s.touched, k,
                      [&](std::uint32_t slot) { return scored_at(idx, slot, s.acc[slot]); });
}

std::vector<ScoredDoc> score_snapshot(
    const index::EpochSnapshot& snap,
    const std::unordered_map<std::string, double>& term_weights) {
  RankScratch& s = scratch();
  sort_weighted_terms(term_weights, s.weighted);
  accumulate_snapshot(snap, s.weighted, s.acc, s.touched);
  std::vector<ScoredDoc> out;
  out.reserve(s.touched.size());
  for (const std::uint32_t slot : s.touched) {
    out.push_back(snapshot_scored_at(snap, slot, s.acc[slot]));
  }
  std::sort(out.begin(), out.end(), ranks_before);
  return out;
}

std::vector<ScoredDoc> compressed_top_k(const CompressedIndex& ci,
                                        const std::unordered_map<std::string, double>& term_weights,
                                        std::size_t k, PruneStats* stats) {
  if (k == 0) return {};
  RankScratch& s = scratch();
  sort_weighted_terms(term_weights, s.weighted);
  const std::uint64_t total = build_cursors(ci, s);
  if (k >= ci.num_documents() || total < kMinPrunedPostings ||
      ci.num_documents() < kMinPrunedDocs) {
    if (stats) ++stats->prune_fallbacks;
    return compressed_exhaustive_top_k(ci, k, s);
  }
  if (stats) ++stats->pruned_queries;
  s.heap.clear();
  pruned_base_scan(ci, k, [](index::DocumentId) { return false; }, s, stats);
  std::vector<ScoredDoc> out(s.heap.begin(), s.heap.end());
  std::sort(out.begin(), out.end(), ranks_before);
  return out;
}

void SnapshotRanker::idf_weights(const std::vector<std::string>& terms,
                                 std::unordered_map<std::string, double>& out) const {
  out.clear();
  for (const std::string& t : terms) {
    if (out.contains(t)) continue;
    out.emplace(t, idf(snap_->num_documents(), snap_->collection_frequency(t)));
  }
}

std::unordered_map<std::string, double> SnapshotRanker::idf_weights(
    const std::vector<std::string>& terms) const {
  std::unordered_map<std::string, double> weights;
  idf_weights(terms, weights);
  return weights;
}

std::vector<ScoredDoc> SnapshotRanker::top_k(const std::vector<std::string>& terms,
                                             std::size_t k, PruneStats* stats) const {
  if (k == 0) return {};
  const index::EpochSnapshot& snap = *snap_;
  RankScratch& s = scratch();
  // Same canonical lexicographic order as TfIdfRanker::top_k, with IDF
  // inputs from the snapshot's exact live statistics.
  s.sorted_terms.assign(terms.begin(), terms.end());
  std::sort(s.sorted_terms.begin(), s.sorted_terms.end());
  s.sorted_terms.erase(std::unique(s.sorted_terms.begin(), s.sorted_terms.end()),
                       s.sorted_terms.end());

  s.weighted.clear();
  for (const std::string_view term : s.sorted_terms) {
    const double weight = idf(snap.num_documents(), snap.collection_frequency(term));
    if (weight > 0.0) s.weighted.emplace_back(term, weight);
  }

  const CompressedIndex* base = snap.base();
  std::uint64_t base_postings = 0;
  bool pruned = base != nullptr && k < snap.num_documents();
  if (pruned) {
    base_postings = build_cursors(*base, s);
    pruned = base_postings >= kMinPrunedPostings &&
             base->num_documents() >= kMinPrunedDocs;
  }
  if (!pruned) {
    // Fallback matrix (docs/INDEX.md): no merged base yet, k covers the
    // whole live corpus, or too few base postings to pay for pruning.
    if (stats) ++stats->prune_fallbacks;
    accumulate_snapshot(snap, s.weighted, s.acc, s.touched);
    return select_top_k(s.touched, k, [&](std::uint32_t slot) {
      return snapshot_scored_at(snap, slot, s.acc[slot]);
    });
  }
  if (stats) ++stats->pruned_queries;

  // Pending segments are scored exhaustively (they are small by the folding
  // policy and carry no block metadata) with the exact snapshot arithmetic,
  // seeding the heap; the base is then scanned pruned. Every live document
  // lives entirely in the base or in exactly one segment occurrence, and
  // ranks_before is a strict total order, so merging through the shared
  // heap reproduces the exhaustive ranking byte for byte.
  const std::uint32_t base_slots = static_cast<std::uint32_t>(base->num_documents());
  s.acc.assign(snap.slot_count() - base_slots, 0.0);
  s.touched.clear();
  for (const auto& [term, weight] : s.weighted) {
    const double w = weight;
    snap.for_each_segment_posting(term,
                                  [&s, base_slots, w](std::uint32_t slot, std::uint32_t freq) {
                                    const std::uint32_t rel = slot - base_slots;
                                    if (s.acc[rel] == 0.0) s.touched.push_back(rel);
                                    s.acc[rel] += score_contribution_memo(freq, w);
                                  });
  }
  s.heap.clear();
  for (const std::uint32_t rel : s.touched) {
    const std::uint32_t slot = base_slots + rel;
    heap_offer(s.heap, k, snapshot_scored_at(snap, slot, s.acc[rel]));
  }

  pruned_base_scan(*base, k, [&snap](index::DocumentId doc) { return snap.base_dead(doc); },
                   s, stats);
  std::vector<ScoredDoc> out(s.heap.begin(), s.heap.end());
  std::sort(out.begin(), out.end(), ranks_before);
  return out;
}

void truncate_top_k(std::vector<ScoredDoc>& docs, std::size_t k) {
  if (docs.size() > k) docs.resize(k);
}

}  // namespace planetp::search
