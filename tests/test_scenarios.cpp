#include "sim/scenarios.hpp"

#include <gtest/gtest.h>

namespace planetp::sim {
namespace {

// Scenario tests use deliberately small communities so the full suite stays
// fast; the bench binaries run the paper-scale versions.

PropagationOptions small_propagation(std::size_t n) {
  PropagationOptions o;
  o.community_size = n;
  o.warmup = 2 * kMinute;
  o.timeout = 2 * kHour;
  return o;
}

TEST(Scenarios, PropagationConvergesOnLan) {
  auto o = small_propagation(50);
  o.profile = BandwidthProfile::kLan;
  const auto r = run_propagation(o);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.propagation_seconds, 0.0);
  EXPECT_GT(r.event_bytes, 0u);
  EXPECT_LE(r.event_bytes, r.total_bytes);
}

TEST(Scenarios, PropagationTimeGrowsSlowlyWithSize) {
  // Propagation is O(log N): quadrupling the community must not quadruple
  // the time (allow generous noise margins).
  auto small = small_propagation(40);
  auto large = small_propagation(160);
  const auto rs = run_propagation(small);
  const auto rl = run_propagation(large);
  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(rl.converged);
  EXPECT_LT(rl.propagation_seconds, rs.propagation_seconds * 3.0);
}

TEST(Scenarios, AntiEntropyBaselineUsesMoreVolume) {
  // The paper's LAN-AE comparison: pure anti-entropy's summary messages
  // scale with community size, so past a modest size it moves more bytes
  // than the rumor-based algorithm for the same event (Fig 2b's crossover).
  auto planetp_opts = small_propagation(250);
  planetp_opts.profile = BandwidthProfile::kLan;
  auto ae_opts = planetp_opts;
  ae_opts.rumoring = false;

  const auto planetp_result = run_propagation(planetp_opts);
  const auto ae_result = run_propagation(ae_opts);
  ASSERT_TRUE(planetp_result.converged);
  ASSERT_TRUE(ae_result.converged);
  EXPECT_GT(ae_result.event_bytes, planetp_result.event_bytes);
}

TEST(Scenarios, SlowerGossipIntervalSlowsPropagation) {
  auto fast = small_propagation(50);
  fast.gossip_interval = 10 * kSecond;
  auto slow = small_propagation(50);
  slow.gossip_interval = 60 * kSecond;
  const auto rf = run_propagation(fast);
  const auto rs = run_propagation(slow);
  ASSERT_TRUE(rf.converged);
  ASSERT_TRUE(rs.converged);
  EXPECT_LT(rf.propagation_seconds, rs.propagation_seconds);
}

TEST(Scenarios, JoinReachesConsistency) {
  JoinOptions o;
  o.existing_members = 40;
  o.joiners = 10;
  o.keys_per_peer = 2000;
  o.warmup = 2 * kMinute;
  o.timeout = 4 * kHour;
  const auto r = run_join(o);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.consistency_seconds, 0.0);
  EXPECT_GT(r.total_bytes, 0u);
}

TEST(Scenarios, MoreJoinersTakeMoreVolume) {
  JoinOptions small;
  small.existing_members = 40;
  small.joiners = 4;
  small.keys_per_peer = 2000;
  small.warmup = 2 * kMinute;
  JoinOptions large = small;
  large.joiners = 16;
  const auto rs = run_join(small);
  const auto rl = run_join(large);
  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(rl.converged);
  EXPECT_GT(rl.total_bytes, rs.total_bytes);
}

TEST(Scenarios, ArrivalsCdfIsComplete) {
  ArrivalOptions o;
  o.stable_members = 40;
  o.arrivals = 10;
  o.mean_interarrival = 30 * kSecond;
  o.warmup = 2 * kMinute;
  o.drain = kHour;
  const auto r = run_arrivals(o);
  EXPECT_EQ(r.events, 10u);
  EXPECT_EQ(r.converged, 10u);
  EXPECT_GT(r.mean_seconds, 0.0);
  EXPECT_LE(r.p50, r.p99);
  ASSERT_FALSE(r.cdf.empty());
  EXPECT_DOUBLE_EQ(r.cdf.back().second, 1.0);
}

TEST(Scenarios, DynamicCommunityConverges) {
  DynamicOptions o;
  o.members = 40;
  o.warmup = 5 * kMinute;
  o.duration = kHour;
  o.mean_online = 20 * kMinute;
  o.mean_offline = 30 * kMinute;
  const auto r = run_dynamic(o);
  EXPECT_GT(r.all.events, 0u);
  EXPECT_GT(r.all.converged, 0u);
  EXPECT_GT(r.total_bytes, 0u);
  EXPECT_FALSE(r.bandwidth_series.empty());
}

TEST(Scenarios, DynamicMixTracksFastAndSlowOrigins) {
  DynamicOptions o;
  o.members = 60;
  o.profile = BandwidthProfile::kMix;
  o.bandwidth_aware = true;
  o.warmup = 5 * kMinute;
  o.duration = kHour;
  o.mean_online = 20 * kMinute;
  o.mean_offline = 30 * kMinute;
  const auto r = run_dynamic(o);
  // Events split by origin class; the union matches the overall tracker.
  EXPECT_EQ(r.fast_only.events + r.slow_only.events, r.all.events);
}

TEST(Scenarios, ProfileNamesAndBandwidths) {
  EXPECT_STREQ(to_string(BandwidthProfile::kLan), "LAN");
  EXPECT_STREQ(to_string(BandwidthProfile::kDsl), "DSL");
  EXPECT_STREQ(to_string(BandwidthProfile::kMix), "MIX");
  Rng rng(1);
  EXPECT_EQ(profile_bandwidth(BandwidthProfile::kLan, rng), link_speed::kLan45M);
  EXPECT_EQ(profile_bandwidth(BandwidthProfile::kDsl, rng), link_speed::kDsl512k);
}

}  // namespace
}  // namespace planetp::sim
