/// Tests for the §7.2 future-work extensions: proxy search for slow peers
/// and incremental (chunked) directory acquisition for bandwidth-limited
/// joiners.

#include <gtest/gtest.h>

#include "core/community.hpp"
#include "gossip/protocol.hpp"

namespace planetp {
namespace {

using core::Community;
using core::Node;
using core::NodeConfig;
using core::SearchHit;

NodeConfig small_config(gossip::LinkClass cls = gossip::LinkClass::kFast) {
  NodeConfig cfg;
  cfg.bloom.bits = 65536;
  cfg.link_class = cls;
  return cfg;
}

TEST(ProxySearch, SlowPeerDelegatesToFastPeer) {
  Community community(small_config());
  Node& fast = community.create_node();  // fast by default
  Node& publisher = community.create_node();
  Node& modem = community.create_node(small_config(gossip::LinkClass::kSlow));

  publisher.publish_text("Heavy Paper", "petabyte archival storage systems design");

  const auto hits = modem.proxy_ranked_search("petabyte archival storage", 5, fast.id());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].title, "Heavy Paper");
}

TEST(ProxySearch, AutomaticProxyPicksAFastPeer) {
  Community community(small_config());
  Node& fast = community.create_node();
  Node& modem = community.create_node(small_config(gossip::LinkClass::kSlow));
  (void)fast;
  Node& publisher = community.create_node();
  publisher.publish_text("Findable", "glacier movement measurements");

  const auto hits = modem.proxy_ranked_search("glacier movement", 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].title, "Findable");
}

TEST(ProxySearch, FallsBackToLocalWhenNoFastPeer) {
  Community community(small_config(gossip::LinkClass::kSlow));
  Node& a = community.create_node(small_config(gossip::LinkClass::kSlow));
  Node& b = community.create_node(small_config(gossip::LinkClass::kSlow));
  b.publish_text("Still Works", "fallback beaver dam engineering");

  const auto hits = a.proxy_ranked_search("beaver dam", 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].title, "Still Works");
}

TEST(ProxySearch, OfflineProxyDegradesToLocalSearch) {
  Community community(small_config());
  Node& proxy = community.create_node();
  Node& modem = community.create_node(small_config(gossip::LinkClass::kSlow));
  Node& publisher = community.create_node();
  publisher.publish_text("Resilient", "failover condor migration data");
  community.set_online(proxy.id(), false);

  const auto hits = modem.proxy_ranked_search("condor migration", 5, proxy.id());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].title, "Resilient");
}

TEST(ChunkedPull, JoinerAcquiresDirectoryInPieces) {
  // A joiner with max_pull_per_exchange = 3 must pull the 10-record
  // directory over multiple anti-entropy exchanges, never more than 3 ids
  // per request.
  gossip::GossipConfig introducer_cfg;
  gossip::Protocol introducer(0, introducer_cfg, Rng(1));
  introducer.quiet_start("intro", gossip::LinkClass::kFast, 0, {});
  for (gossip::PeerId id = 10; id < 20; ++id) {
    gossip::PeerRecord r;
    r.id = id;
    r.version = 2;
    r.address = "peer" + std::to_string(id);
    r.key_count = 100;
    introducer.directory().apply(r);
  }

  gossip::GossipConfig modem_cfg;
  modem_cfg.max_pull_per_exchange = 3;
  gossip::Protocol modem(1, modem_cfg, Rng(2));
  modem.local_join("modem", gossip::LinkClass::kSlow, 0, {}, 0);

  std::size_t exchanges = 0;
  std::size_t max_request = 0;
  // Drive repeated anti-entropy exchanges by hand.
  while (modem.directory().size() < 12 && exchanges < 20) {
    ++exchanges;
    auto request = modem.join_via(0);
    auto summary_replies = introducer.on_message(0, 1, request.msg);
    ASSERT_FALSE(summary_replies.empty());
    auto pulls = modem.on_message(0, 0, summary_replies[0].msg);
    if (pulls.empty()) break;  // nothing missing anymore
    if (const auto* pull = std::get_if<gossip::PullRequestMsg>(&pulls[0].msg)) {
      max_request = std::max(max_request, pull->ids.size());
    }
    auto data = introducer.on_message(0, 1, pulls[0].msg);
    ASSERT_FALSE(data.empty());
    modem.on_message(0, 0, data[0].msg);
  }
  EXPECT_EQ(modem.directory().size(), 12u);  // self + introducer + 10 records
  EXPECT_LE(max_request, 3u);
  EXPECT_GE(exchanges, 4u);  // 11 records at <=3 per exchange
}

TEST(ChunkedPull, UnlimitedByDefault) {
  gossip::GossipConfig cfg;
  EXPECT_EQ(cfg.max_pull_per_exchange, 0u);

  gossip::Protocol a(0, cfg, Rng(1));
  a.quiet_start("a", gossip::LinkClass::kFast, 0, {});
  for (gossip::PeerId id = 10; id < 40; ++id) {
    gossip::PeerRecord r;
    r.id = id;
    r.version = 1;
    a.directory().apply(r);
  }
  gossip::Protocol b(1, cfg, Rng(2));
  b.quiet_start("b", gossip::LinkClass::kFast, 0, {});

  auto summary_replies = a.on_message(0, 1, gossip::SummaryRequestMsg{});
  auto pulls = b.on_message(0, 0, summary_replies[0].msg);
  ASSERT_FALSE(pulls.empty());
  const auto* pull = std::get_if<gossip::PullRequestMsg>(&pulls[0].msg);
  ASSERT_NE(pull, nullptr);
  EXPECT_EQ(pull->ids.size(), 31u);  // everything at once
}


TEST(GossipModeCatchUp, RejoinerLearnsMissedEventsQuickly) {
  // In gossip-step mode, a peer that was offline during a publish must pull
  // the missed filter change via its rejoin catch-up anti-entropy.
  NodeConfig cfg = small_config();
  Community community(cfg, core::SyncMode::kGossipStep);
  Node& a = community.create_node();
  Node& b = community.create_node();
  Node& sleeper = community.create_node();
  (void)b;
  ASSERT_TRUE(community.step_until_converged(30 * kMinute));

  community.set_online(sleeper.id(), false);
  a.publish_text("Missed", "events during albatross absence");
  ASSERT_TRUE(community.step_until_converged(30 * kMinute));

  community.set_online(sleeper.id(), true);
  // The catch-up pull is synchronous in the in-process community; the
  // sleeper already holds a's newest record.
  const gossip::PeerRecord* r = sleeper.protocol().directory().find(a.id());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->version, 2u);
  EXPECT_EQ(sleeper.exhaustive_search("albatross absence").hits.size(), 1u);
}

}  // namespace
}  // namespace planetp
