#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "search/ipf.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

/// \file candidate_cache.hpp
/// The query hot path (docs/SEARCH.md "Query hot path"). Table 1 of the
/// paper shows the "rank peers" step — probing every peer's 50 KB Bloom
/// filter for every query term — dominating query cost at 5000 peers. Between
/// gossip rounds the filter set is immutable, and filter updates arrive as
/// XOR diffs that say exactly which bits changed; re-deriving the
/// term→candidate mapping per query throws that structure away. Following
/// Witten et al.'s precompute-and-maintain doctrine, CandidateCache keeps:
///
///  1. a versioned store of each peer's Bloom filter (the searcher's
///     directory view), kept current by full updates, version touches, and
///     *surgical* XOR-diff application: an incoming diff is tested against
///     every cached term's bit positions, so an update that does not touch a
///     term's bits leaves its candidate entry warm, and one that does fixes
///     just that (term, peer) membership instead of invalidating wholesale.
///     Filters fed as wire bytes (update_peer_wire) stay Golomb-compressed
///     *at rest*: they decode on first use, the decoded working set is
///     LRU-bounded by max_decoded_bytes, and gossiped diffs merge into the
///     compressed form directly (gap-domain XOR) so an at-rest peer is
///     updated without ever materializing its bit vector;
///  2. a bounded (LRU) term → candidate-peers map over the known filter
///     population, consulted by lookup();
///  3. a filter-major batched probe kernel for cache misses: one pass over
///     the peers, probing all missing terms back-to-back per filter with
///     pre-hashed HashPairs, word-aligned bit reads and software prefetch,
///     sharded across a lazily created ThreadPool for large communities.
///
/// lookup() is byte-identical to building an IpfTable from scratch: candidate
/// membership is a pure function of filter contents, per-peer rank mass
/// accumulates in the same (sorted-term) order, and rank_peers orders its
/// output by a deterministic total order — candidate-list order carries no
/// meaning. All public methods are thread-safe.

namespace planetp::search {

struct CandidateCacheConfig {
  /// Master switch for the term→candidate entries. Disabled, lookup() still
  /// runs the batched probe kernel (every term a miss, nothing stored) and
  /// the filter store still serves as the decoded-filter cache.
  bool enabled = true;
  /// Bound on cached term entries; least-recently-used entries evict first.
  std::size_t max_terms = 4096;
  /// Probe kernels over at least this many filters shard across the thread
  /// pool; smaller scans stay single-threaded (fork/join overhead dominates).
  std::size_t parallel_threshold = 2048;
  /// Worker threads for the parallel scan; 0 = hardware concurrency. The
  /// pool is created lazily on the first scan that crosses the threshold.
  std::size_t max_threads = 0;
  /// Bound on decoded filter bytes held for wire-backed peers (those fed via
  /// update_peer_wire). Beyond it the least-recently-used decoded filter is
  /// dropped back to its Golomb-compressed wire form — the next
  /// resident_filter() re-decodes on demand. 0 = unbounded. Filters installed
  /// without wire backing (update_peer) count toward the bound but are never
  /// evicted: the wire bytes are the only durable copy a wire-backed peer
  /// needs, a decoded-only peer has nothing to fall back to.
  std::size_t max_decoded_bytes = 0;
};

/// Monotonic counters; read them to pin cache behaviour in tests.
struct CandidateCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t term_hits = 0;        ///< terms answered from a warm entry
  std::uint64_t term_misses = 0;      ///< terms probed by the kernel
  std::uint64_t surgical_keeps = 0;   ///< diff left a cached term untouched
  std::uint64_t surgical_fixes = 0;   ///< diff hit a term's bits; membership re-probed
  std::uint64_t view_memo_hits = 0;   ///< lookups that reused the memoized view split
  std::uint64_t full_reprobes = 0;    ///< full filter replacement re-probed entries
  std::uint64_t evictions = 0;        ///< entries dropped by the max_terms bound
  std::uint64_t parallel_scans = 0;   ///< kernel invocations that used the pool
  std::uint64_t wire_decodes = 0;     ///< on-demand decodes of at-rest wire filters
  std::uint64_t decoded_evictions = 0;  ///< decoded filters dropped back to wire form
};

class CandidateCache {
 public:
  explicit CandidateCache(CandidateCacheConfig config = {});
  ~CandidateCache();

  // ------------------------------------------------------------------
  // Population maintenance (drive from directory / gossip events)
  // ------------------------------------------------------------------

  /// Install or replace \p peer's filter at \p version. Every cached term is
  /// re-probed against the new filter, so existing entries stay warm and
  /// correct. The cache shares ownership of the filter; callers handing over
  /// a non-owning aliasing pointer must keep the filter alive and unchanged.
  void update_peer(std::uint32_t peer, std::shared_ptr<const bloom::BloomFilter> filter,
                   std::uint64_t version);

  /// Install or replace \p peer's filter *at rest*: the cache keeps only the
  /// Golomb-compressed \p wire bytes (exactly what encode_filter emits) and
  /// decodes on the first resident_filter() call. With max_decoded_bytes set
  /// this is what keeps directory-of-the-community memory at compressed cost
  /// plus a bounded decoded working set. Empty \p wire forgets the peer.
  void update_peer_wire(std::uint32_t peer, std::vector<std::uint8_t> wire,
                        std::uint64_t version);

  /// Surgical update from a gossiped XOR diff: applies \p diff to a private
  /// copy of the stored filter and fixes only the cached terms whose bit
  /// positions the diff touches. Returns false (no change) when the stored
  /// version is not \p base_version — the caller should fall back to a full
  /// update_peer with the record's filter. Refuses wire-backed peers (use
  /// apply_peer_diff_wire, which keeps the at-rest bytes in sync).
  bool apply_peer_diff(std::uint32_t peer, const BitVector& diff,
                       std::uint64_t base_version, std::uint64_t new_version);

  /// Wire-domain diff for a wire-backed peer: the at-rest bytes are updated
  /// by a Golomb gap merge (bloom::merge_diff_wire — no bit vector is ever
  /// materialized) and, when the peer is decoded-resident, the same flips are
  /// mirrored onto the decoded copy with the usual surgical entry fixes.
  /// \p diff_wire is an encode_diff byte string. Returns false when the peer
  /// is not wire-backed at \p base_version or the streams do not parse — the
  /// caller should fall back to update_peer_wire with the record's full wire.
  bool apply_peer_diff_wire(std::uint32_t peer, std::span<const std::uint8_t> diff_wire,
                            std::uint64_t base_version, std::uint64_t new_version);

  /// Record a version bump whose filter content is unchanged (a rejoin
  /// rumor). Returns false when the peer is unknown.
  bool touch_peer(std::uint32_t peer, std::uint64_t version);

  /// Forget a peer (expired from the directory): its filter is dropped and
  /// it is removed from every cached candidate list.
  void remove_peer(std::uint32_t peer);

  /// Drop everything (filters and entries).
  void clear();

  /// Version the cache holds for \p peer, if any.
  std::optional<std::uint64_t> version_of(std::uint32_t peer) const;

  /// The stored decoded filter (shared ownership), or nullptr when unknown
  /// or currently at rest in wire form (no decode is triggered).
  std::shared_ptr<const bloom::BloomFilter> filter_of(std::uint32_t peer) const;

  /// Raw pointer to the stored decoded filter; valid until the next
  /// update_peer / apply_peer_diff / remove_peer / clear for that peer — or,
  /// for wire-backed peers under a max_decoded_bytes bound, until eviction.
  /// Callers that hold filters across further cache traffic should pin the
  /// shared_ptr from resident_filter() instead.
  const bloom::BloomFilter* filter_ptr(std::uint32_t peer) const;

  /// The peer's decoded filter, decoding it from the at-rest wire bytes on
  /// demand (and possibly evicting the LRU decoded filter to stay under
  /// max_decoded_bytes). The returned shared_ptr pins the decoded filter for
  /// the caller even if the cache drops its own copy. nullptr when the peer
  /// is unknown or its wire bytes do not parse.
  std::shared_ptr<const bloom::BloomFilter> resident_filter(std::uint32_t peer);

  /// Bytes of decoded filter payload currently resident (all peers).
  std::size_t decoded_bytes() const;

  /// Peers whose filter is currently decoded-resident.
  std::size_t resident_peers() const;

  // ------------------------------------------------------------------
  // Query path
  // ------------------------------------------------------------------

  /// IpfTable over \p view, byte-identical to IpfTable(terms, view). View
  /// entries whose filter pointer is the cache's own stored filter resolve
  /// through the cached candidate sets (warm terms) or the batched kernel
  /// (misses, which also populate the cache); any other view entry — an
  /// unknown peer, a stale pointer, the searcher's own scratch filter — is
  /// probed directly, so correctness never depends on callers keeping the
  /// cache perfectly synchronized.
  IpfTable lookup(const HashedTerms& terms, const std::vector<PeerFilter>& view);
  IpfTable lookup(const std::vector<std::string>& terms,
                  const std::vector<PeerFilter>& view);

  CandidateCacheStats stats() const;
  std::size_t cached_terms() const;
  std::size_t known_peers() const;
  const CandidateCacheConfig& config() const { return config_; }

  /// Population epoch: bumped on every content change (update_peer,
  /// apply_peer_diff, remove_peer, clear; touch_peer leaves content — and
  /// so the epoch — alone). A lookup runs entirely against one epoch: a
  /// cache primed on epoch E serves E-consistent results, and a population
  /// change re-probes every cached entry (full_reprobes / surgical_* count
  /// which path) before epoch E+1 answers — never a mix of the two.
  std::uint64_t population_epoch() const;

 private:
  struct TermEntry {
    HashPair hp;
    std::vector<std::uint32_t> peers;        ///< sorted ids over all known peers
    std::list<std::string>::iterator lru;    ///< position in lru_ (front = hottest)
  };
  struct PeerState {
    std::shared_ptr<const bloom::BloomFilter> filter;  ///< decoded; null = at rest
    std::vector<std::uint8_t> wire;  ///< compressed at-rest copy (empty = decoded-only)
    std::uint64_t version = 0;
    std::list<std::uint32_t>::iterator lru;  ///< decoded_lru_ slot; valid iff evictable
    bool evictable = false;  ///< wire-backed and decoded-resident (in decoded_lru_)
  };
  /// Memoized backed/extra split of the most recent view (see lookup()):
  /// callers rebuild the same directory view query after query, so the
  /// per-row classification — one hash lookup per peer — is paid once per
  /// population epoch instead of once per query. Defined in the .cpp;
  /// shared_ptr so a lookup keeps its snapshot alive across the unlocked
  /// probe even when a concurrent query with a different view replaces it.
  struct ViewMemo;

  using EntryMap = std::unordered_map<std::string, TermEntry, StringHash, std::equal_to<>>;

  /// Probe \p terms against \p filters (filter-major, prefetching), sharded
  /// over the pool when the population is large. out[t] = ids whose filter
  /// contains terms[t], in filter order. Caller must not hold mu_.
  void probe_batch(const std::vector<std::pair<std::uint32_t, const bloom::BloomFilter*>>& filters,
                   const std::vector<HashPair>& terms,
                   std::vector<std::vector<std::uint32_t>>& out);

  /// Re-probe every cached entry's membership of \p peer against \p filter
  /// (nullptr = remove). Caller holds mu_.
  void reprobe_entries(std::uint32_t peer, const bloom::BloomFilter* filter);

  void evict_to_bound();  ///< caller holds mu_

  /// Drop \p st's decoded filter (bytes accounting + LRU unlink); the caller
  /// is responsible for the matching reprobe_entries call. Caller holds mu_.
  void detach_residency(PeerState& st);

  /// Evict least-recently-used wire-backed decoded filters until
  /// decoded_bytes_ fits max_decoded_bytes. Caller holds mu_.
  void evict_decoded_to_bound();

  mutable std::mutex mu_;
  CandidateCacheConfig config_;
  EntryMap entries_;
  std::list<std::string> lru_;  ///< most recently used at front
  std::unordered_map<std::uint32_t, PeerState> peers_;
  std::list<std::uint32_t> decoded_lru_;  ///< evictable resident peers, hottest first
  std::size_t decoded_bytes_ = 0;         ///< resident decoded payload (all peers)
  /// Bumped on every population change; in-flight miss probes only install
  /// their results when the epoch they were computed against still holds.
  std::uint64_t epoch_ = 0;
  std::shared_ptr<const ViewMemo> memo_;  ///< last view's classification
  std::unique_ptr<ThreadPool> pool_;  ///< created on first large scan
  CandidateCacheStats stats_;
};

}  // namespace planetp::search
