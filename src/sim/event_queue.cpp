#include "sim/event_queue.hpp"

namespace planetp::sim {

void EventQueue::schedule(Duration delay, Callback fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void EventQueue::schedule_at(TimePoint at, Callback fn) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

std::size_t EventQueue::run_until(TimePoint limit) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= limit) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++executed;
  }
  if (now_ < limit) now_ = limit;
  return executed;
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++executed;
  }
  return executed;
}

}  // namespace planetp::sim
