#include "search/distributed.hpp"

#include <algorithm>

#include "search/candidate_cache.hpp"
#include <unordered_set>
#include <utility>

namespace planetp::search {

const char* contact_status_name(ContactStatus status) {
  switch (status) {
    case ContactStatus::kOk: return "ok";
    case ContactStatus::kTimeout: return "timeout";
    case ContactStatus::kError: return "error";
    case ContactStatus::kUnreachable: return "unreachable";
  }
  return "unknown";
}

Duration RetryPolicy::backoff_before(std::uint32_t retry, Rng& rng) const {
  if (retry == 0 || base_backoff <= 0) return 0;
  Duration backoff = base_backoff;
  for (std::uint32_t i = 1; i < retry && backoff < max_backoff; ++i) backoff *= 2;
  if (max_backoff > 0) backoff = std::min(backoff, max_backoff);
  const double slice = std::clamp(jitter, 0.0, 1.0);
  if (slice > 0.0) {
    const auto window = static_cast<Duration>(static_cast<double>(backoff) * slice);
    if (window > 0) {
      backoff = backoff - window +
                static_cast<Duration>(rng.below(static_cast<std::uint64_t>(window) + 1));
    }
  }
  return backoff;
}

std::vector<RankedPeer> rank_peers(const IpfTable& ipf) {
  // Gossip allocates peer ids densely, so the eq. 3 mass almost always
  // accumulates into a flat array (one indexed add per candidate instead of
  // a hashed insert); sparse/huge id spaces fall back to the map. Both paths
  // add each peer's terms in the same (sorted-term) order and the sort below
  // is a total order, so the output is identical either way. A zero mass
  // means "untouched": every accumulated weight is > 0.
  static constexpr std::uint32_t kDenseLimit = 1u << 22;  // 32 MB accumulator cap
  std::uint32_t max_id = 0;
  std::size_t candidates = 0;
  for (const std::string& term : ipf.terms()) {
    for (std::uint32_t peer : ipf.peers_with(term)) {
      max_id = std::max(max_id, peer);
      ++candidates;
    }
  }
  std::vector<RankedPeer> out;
  if (candidates > 0 && max_id < kDenseLimit) {
    std::vector<double> mass(static_cast<std::size_t>(max_id) + 1, 0.0);
    std::vector<std::uint32_t> touched;
    touched.reserve(candidates);
    for (const std::string& term : ipf.terms()) {
      const double w = ipf.weight(term);
      if (w <= 0.0) continue;
      for (std::uint32_t peer : ipf.peers_with(term)) {
        if (mass[peer] == 0.0) touched.push_back(peer);
        mass[peer] += w;
      }
    }
    out.reserve(touched.size());
    for (std::uint32_t peer : touched) {
      out.push_back(RankedPeer{peer, mass[peer], ipf.suspicion_of(peer)});
    }
  } else {
    std::unordered_map<std::uint32_t, double> acc;
    for (const std::string& term : ipf.terms()) {
      const double w = ipf.weight(term);
      if (w <= 0.0) continue;
      for (std::uint32_t peer : ipf.peers_with(term)) acc[peer] += w;
    }
    out.reserve(acc.size());
    for (const auto& [peer, rank] : acc) {
      out.push_back(RankedPeer{peer, rank, ipf.suspicion_of(peer)});
    }
  }
  std::sort(out.begin(), out.end(), [](const RankedPeer& a, const RankedPeer& b) {
    const double ra = a.effective_rank();
    const double rb = b.effective_rank();
    if (ra != rb) return ra > rb;
    return a.peer < b.peer;  // deterministic: equal mass resolves to lowest id
  });
  return out;
}

DistributedSearchResult tfipf_search(const std::vector<std::string>& query_terms,
                                     const std::vector<PeerFilter>& filters,
                                     const PeerSearchFn& contact,
                                     const DistributedSearchOptions& opts) {
  DistributedSearchResult result;

  // Hash the query once; the eq. 3 table (cached or scanned) and every
  // downstream probe reuse the HashPairs.
  const HashedTerms hashed = HashedTerms::from(query_terms);
  const IpfTable ipf = opts.cache != nullptr ? opts.cache->lookup(hashed, filters)
                                             : IpfTable(hashed, filters);
  const auto weights = ipf.weights();
  const auto peers = rank_peers(ipf);
  result.candidate_peers = peers.size();

  const std::size_t patience = opts.stopping.patience(filters.size(), opts.k);
  const std::size_t group = std::max<std::size_t>(1, opts.group_size);

  Rng rng(opts.seed);
  const TimePoint start = opts.clock ? opts.clock() : 0;
  Duration virtual_elapsed = 0;  // latency + backoff accounting when no clock
  auto elapsed_now = [&]() -> Duration {
    return opts.clock ? (opts.clock() - start) : virtual_elapsed;
  };
  auto charge = [&](Duration d) {
    if (!opts.clock && d > 0) virtual_elapsed += d;
  };
  auto over_deadline = [&]() { return opts.deadline > 0 && elapsed_now() >= opts.deadline; };

  double attempted_mass = 0.0;
  double ok_mass = 0.0;

  // Contact one peer with bounded retry (single attempt for hedges). Records
  // the outcome, the time charged, and the coverage masses.
  auto contact_peer = [&](const RankedPeer& rp,
                          bool hedged) -> std::pair<bool, std::vector<ScoredDoc>> {
    PeerOutcome outcome;
    outcome.peer = rp.peer;
    outcome.hedged = hedged;
    result.contacted.push_back(rp.peer);
    attempted_mass += rp.rank;

    std::vector<ScoredDoc> docs;
    const std::uint32_t budget =
        hedged ? 1u : std::max<std::uint32_t>(1, opts.retry.max_attempts);
    for (std::uint32_t attempt = 1; attempt <= budget; ++attempt) {
      PeerSearchResult res = contact(rp.peer, weights);
      outcome.attempts = attempt;
      outcome.status = res.status;
      outcome.latency += res.latency;
      charge(res.latency);
      if (res.is_ok()) {
        docs = std::move(res.docs);
        break;
      }
      // No route at all: retrying immediately cannot help inside one query.
      if (res.status == ContactStatus::kUnreachable) break;
      if (attempt >= budget || over_deadline()) break;
      const Duration backoff = opts.retry.backoff_before(attempt, rng);
      if (opts.sleep) opts.sleep(backoff);
      charge(backoff);
      outcome.latency += backoff;
      ++result.retries;
    }

    const bool ok = outcome.status == ContactStatus::kOk;
    if (ok) {
      ok_mass += rp.rank;
    } else {
      ++result.failed_peers;
    }
    result.outcomes.push_back(outcome);
    return {ok, std::move(docs)};
  };

  std::vector<ScoredDoc> merged;
  std::size_t no_contribution_streak = 0;

  auto merge_docs = [&](const std::vector<ScoredDoc>& local) {
    merged.insert(merged.end(), local.begin(), local.end());
    std::sort(merged.begin(), merged.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.doc < b.doc;
    });
  };
  auto contributed_to_top_k = [&](const std::vector<ScoredDoc>& local) {
    std::unordered_set<index::DocumentId, index::DocumentIdHash> top;
    const std::size_t top_n = std::min(opts.k, merged.size());
    for (std::size_t t = 0; t < top_n; ++t) top.insert(merged[t].doc);
    for (const ScoredDoc& d : local) {
      if (top.contains(d.doc)) return true;
    }
    return false;
  };

  // Candidate walk: a single cursor over the eq. 3 ranking. Hedges and
  // substitutions consume candidates from the same cursor, so every peer is
  // contacted at most once per query.
  std::size_t cursor = 0;
  auto next_candidate = [&]() -> const RankedPeer* {
    return cursor < peers.size() ? &peers[cursor++] : nullptr;
  };

  bool stop = false;
  while (cursor < peers.size() && !stop) {
    if (opts.max_peers != 0 && result.contacted.size() >= opts.max_peers) break;

    // One group step (the paper's latency optimization; group = 1 reproduces
    // the sequential algorithm). A failed peer does not consume a slot or
    // touch the stopping streak: the next candidate is substituted in its
    // place so eq. 4 still judges `patience` *productive* contacts.
    std::size_t slots = 0;
    while (slots < group) {
      if (over_deadline()) {
        result.deadline_exceeded = true;
        stop = true;
        break;
      }
      const RankedPeer* next = next_candidate();
      if (next == nullptr) {
        stop = true;
        break;
      }
      const RankedPeer rp = *next;
      auto [ok, local] = contact_peer(rp, /*hedged=*/false);
      if (!ok) {
        if (cursor < peers.size()) ++result.substituted_peers;
        continue;  // substitution: same slot, next candidate
      }

      merge_docs(local);
      const bool contributed = contributed_to_top_k(local);

      // Hedging: a successful-but-slow contact also fires one duplicate
      // request at the next-ranked candidate to cut tail latency.
      if (opts.hedge_threshold > 0 &&
          result.outcomes.back().latency >= opts.hedge_threshold) {
        if (const RankedPeer* hp = next_candidate()) {
          const RankedPeer hedge = *hp;
          ++result.hedged_contacts;
          auto [hok, hlocal] = contact_peer(hedge, /*hedged=*/true);
          if (hok) merge_docs(hlocal);
        }
      }

      if (contributed) {
        no_contribution_streak = 0;
      } else if (++no_contribution_streak >= patience && merged.size() >= opts.k) {
        stop = true;
      }
      ++slots;
      if (stop) break;
    }
  }

  result.coverage =
      (result.failed_peers == 0 || attempted_mass <= 0.0) ? 1.0 : ok_mass / attempted_mass;
  result.elapsed = elapsed_now();

  truncate_top_k(merged, opts.k);
  result.docs = std::move(merged);
  return result;
}

}  // namespace planetp::search
