#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/porter_stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/tokenizer.hpp"
#include "util/hash.hpp"

/// \file analyzer.hpp
/// The full indexing pipeline of §7.3: tokenize -> stop-word removal ->
/// Porter stemming. Both documents and queries pass through the same
/// analyzer so their term spaces agree.
///
/// The hot path is the streaming form, Analyzer::for_each_term: tokens are
/// built in a reusable scratch buffer, stemming runs in a second scratch
/// buffer, and a bounded direct-mapped memo caches the token -> stemmed-term
/// decision so repeated tokens (the common case under a Zipf vocabulary)
/// skip the stemmer entirely. Steady state, the whole pipeline performs no
/// heap allocations. The string-vector and frequency-map entry points are
/// kept as thin wrappers. See docs/INDEX.md for the scratch/memo contract.

namespace planetp::text {

struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
};

/// Reusable per-caller working state for Analyzer::for_each_term. Owning one
/// of these and passing it to every call is what makes the pipeline
/// allocation-free; the buffers and memo only ever grow to a small bounded
/// size and their capacity is reused across calls.
///
/// Contract:
///   - a scratch is NOT thread-safe: one scratch per thread;
///   - the memo stores option-independent facts only (Porter stems and the
///     global stop-word list), so a scratch may be shared across analyzers —
///     but only analyzers with the default memoable configuration
///     (stem && remove_stopwords) consult it;
///   - entries are evicted by overwrite (direct-mapped, kMemoSlots slots),
///     so memory stays bounded no matter how large the input vocabulary is.
class AnalyzerScratch {
 public:
  AnalyzerScratch() = default;

  /// Drop all memoized entries (buffer capacity is kept).
  void reset() { memo_.clear(); }

 private:
  friend class Analyzer;

  struct MemoEntry {
    std::uint64_t hash = 0;
    bool used = false;
    bool dropped = false;  ///< token (or its stem) was a stop word
    std::string raw;       ///< the lower-cased token this entry answers for
    std::string out;       ///< its stemmed form (empty when dropped)
  };

  static constexpr std::size_t kMemoSlots = 2048;  // power of two

  MemoEntry& slot(std::uint64_t h) {
    if (memo_.empty()) memo_.resize(kMemoSlots);
    return memo_[static_cast<std::size_t>(h) & (kMemoSlots - 1)];
  }

  std::string token_;  ///< tokenizer build buffer
  std::string stem_;   ///< stemmer in-place buffer
  std::vector<MemoEntry> memo_;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions opts = {}) : opts_(opts) {}

  /// Streaming core of the pipeline: invoke \p fn(term) for every processed
  /// term of \p input, in document order, duplicates kept. The string_view
  /// handed to \p fn aliases \p scratch and is only valid during the
  /// callback — consumers must copy or intern it before returning.
  template <typename Fn>
  void for_each_term(std::string_view input, AnalyzerScratch& scratch, Fn&& fn) const {
    // The memo records stems + stop-word verdicts, which are global facts —
    // but only valid as a full-pipeline answer under the default options.
    const bool memoable = opts_.stem && opts_.remove_stopwords;
    for_each_token(input, opts_.tokenizer, scratch.token_, [&](std::string_view tok) {
      if (!opts_.stem) {
        if (opts_.remove_stopwords && is_stopword(tok)) return;
        fn(tok);
        return;
      }
      if (memoable) {
        const std::uint64_t h = fnv1a64(tok);
        AnalyzerScratch::MemoEntry& e = scratch.slot(h);
        if (e.used && e.hash == h && e.raw == tok) {
          if (!e.dropped) fn(std::string_view(e.out));
          return;
        }
        bool dropped = true;
        if (!is_stopword(tok)) {
          scratch.stem_.assign(tok);
          porter_stem(scratch.stem_);
          // A stem can collapse onto a stop word ("having" -> "have"); drop
          // those too so queries and documents agree.
          dropped = is_stopword(scratch.stem_);
        }
        e.used = true;
        e.hash = h;
        e.dropped = dropped;
        e.raw.assign(tok);
        if (dropped) {
          e.out.clear();
        } else {
          e.out.assign(scratch.stem_);
          fn(std::string_view(e.out));
        }
        return;
      }
      // Non-default options: stem directly in the scratch buffer.
      if (opts_.remove_stopwords && is_stopword(tok)) return;
      scratch.stem_.assign(tok);
      porter_stem(scratch.stem_);
      if (opts_.remove_stopwords && is_stopword(scratch.stem_)) return;
      fn(std::string_view(scratch.stem_));
    });
  }

  /// Analyze \p input into the processed term sequence (duplicates kept, in
  /// document order — term frequency is derived by the index).
  std::vector<std::string> analyze(std::string_view input) const;

  /// Analyze and aggregate into term -> frequency (single pass; terms are
  /// counted directly in the token loop, no intermediate vector).
  std::unordered_map<std::string, std::uint32_t> term_frequencies(std::string_view input) const;

  /// Process a single raw token; returns empty string if it is dropped.
  std::string process_token(std::string_view token) const;

  const AnalyzerOptions& options() const { return opts_; }

 private:
  AnalyzerOptions opts_;
};

}  // namespace planetp::text
