#pragma once

#include <cstdint>
#include <limits>

#include "util/hash.hpp"

/// \file rng.hpp
/// Deterministic random number generation. PlanetP experiments must be
/// reproducible, so every stochastic component takes an explicit Rng seeded
/// from the experiment seed — never global state.

namespace planetp {

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, and each instance
/// is independent: suitable for giving every simulated peer its own stream.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : s_) {
      seed = splitmix64(seed);
      word = seed;
    }
    // All-zero state is invalid for xoshiro; splitmix64 of anything cannot
    // produce four zero words in a row, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (e.g. one per simulated peer).
  Rng fork(std::uint64_t stream_id) {
    return Rng(splitmix64(s_[0] ^ splitmix64(stream_id)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace planetp
