/// Focused tests for the bandwidth-aware two-class gossiping of §7.2 and its
/// interaction with target selection, plus scenario-level checks that the
/// class split behaves as specified.

#include <gtest/gtest.h>

#include "gossip/protocol.hpp"
#include "sim/scenarios.hpp"

namespace planetp::gossip {
namespace {

GossipConfig aware_config() {
  GossipConfig cfg;
  cfg.bandwidth_aware = true;
  return cfg;
}

/// Build a protocol with one fast and one slow neighbour.
Protocol make_peer(PeerId self, LinkClass self_class, GossipConfig cfg) {
  Protocol p(self, cfg, Rng(self * 101 + 7));
  p.quiet_start("self", self_class, 0, {});
  PeerRecord fast;
  fast.id = 100;
  fast.version = 1;
  fast.address = "fast";
  fast.link_class = LinkClass::kFast;
  PeerRecord slow;
  slow.id = 200;
  slow.version = 1;
  slow.address = "slow";
  slow.link_class = LinkClass::kSlow;
  p.directory().apply(fast);
  p.directory().apply(slow);
  return p;
}

TEST(BandwidthAware, FastPeerAntiEntropyAlwaysTargetsFast) {
  // "When performing anti-entropy, a fast peer always chooses another fast
  // peer."
  Protocol p = make_peer(1, LinkClass::kFast, aware_config());
  for (int i = 0; i < 40; ++i) {
    const auto batch = p.on_round(0);  // no hot rumors: every round is AE
    for (const auto& out : batch) {
      ASSERT_TRUE(std::holds_alternative<SummaryRequestMsg>(out.msg));
      EXPECT_EQ(out.to, 100u);
    }
  }
}

TEST(BandwidthAware, SlowPeerAntiEntropyUsesAnyone) {
  // "When performing anti-entropy, a slow peer chooses any node with equal
  // probability."
  Protocol p = make_peer(1, LinkClass::kSlow, aware_config());
  std::set<PeerId> targets;
  for (int i = 0; i < 60; ++i) {
    for (const auto& out : p.on_round(0)) targets.insert(out.to);
  }
  EXPECT_TRUE(targets.contains(100u));
  EXPECT_TRUE(targets.contains(200u));
}

TEST(BandwidthAware, SlowOriginatorRumorsToFastFirst) {
  // "a slow peer always chooses another slow guy ... unless it is the
  // source of the rumor; in this case, it chooses a fast peer."
  GossipConfig cfg = aware_config();
  Protocol p = make_peer(1, LinkClass::kSlow, cfg);
  p.local_filter_change(10, 10, {}, {}, 0);
  bool saw_rumor = false;
  for (int i = 0; i < 20; ++i) {
    for (const auto& out : p.on_round(0)) {
      if (std::holds_alternative<RumorMsg>(out.msg)) {
        saw_rumor = true;
        EXPECT_EQ(out.to, 100u);  // fast target for locally originated rumor
      }
    }
  }
  EXPECT_TRUE(saw_rumor);
}

TEST(BandwidthAware, SlowRelayRumorsToSlowPeers) {
  // A slow peer relaying someone else's rumor must pick slow targets, so it
  // cannot impede fast peers.
  GossipConfig cfg = aware_config();
  Protocol p = make_peer(1, LinkClass::kSlow, cfg);
  RumorMsg incoming;
  RumorPayload payload;
  payload.origin = 100;
  payload.version = 2;
  payload.address = "fast";
  payload.link_class = LinkClass::kFast;
  incoming.rumors.push_back(std::move(payload));
  p.on_message(0, 100, incoming);
  ASSERT_EQ(p.hot_rumor_count(), 1u);

  for (int i = 0; i < 20; ++i) {
    for (const auto& out : p.on_round(0)) {
      if (std::holds_alternative<RumorMsg>(out.msg)) {
        EXPECT_EQ(out.to, 200u);  // slow target for relayed rumor
      }
    }
  }
}

TEST(BandwidthAware, FlatSelectionWhenDisabled) {
  GossipConfig cfg;  // bandwidth_aware = false
  Protocol p = make_peer(1, LinkClass::kFast, cfg);
  std::set<PeerId> targets;
  for (int i = 0; i < 60; ++i) {
    for (const auto& out : p.on_round(0)) targets.insert(out.to);
  }
  EXPECT_EQ(targets.size(), 2u);  // both classes reachable
}

}  // namespace
}  // namespace planetp::gossip

namespace planetp::sim {
namespace {

TEST(BandwidthAwareScenario, MixFastEventsConvergeFasterThanAll) {
  DynamicOptions o;
  o.members = 120;
  o.profile = BandwidthProfile::kMix;
  o.bandwidth_aware = true;
  o.warmup = 5 * kMinute;
  o.duration = 90 * kMinute;
  o.mean_online = 30 * kMinute;
  o.mean_offline = 45 * kMinute;
  o.seed = 99;
  const auto r = run_dynamic(o);
  ASSERT_GT(r.fast_only.converged, 0u);
  ASSERT_GT(r.all.converged, 0u);
  // Fast-origin events judged on fast peers only cannot be slower on
  // average than full convergence over everyone.
  EXPECT_LE(r.fast_only.p50, r.all.p50 * 1.5);
}

TEST(BandwidthAwareScenario, ResultFieldsArePopulated) {
  DynamicOptions o;
  o.members = 60;
  o.profile = BandwidthProfile::kMix;
  o.bandwidth_aware = true;
  o.warmup = 2 * kMinute;
  o.duration = 30 * kMinute;
  o.mean_online = 15 * kMinute;
  o.mean_offline = 20 * kMinute;
  const auto r = run_dynamic(o);
  EXPECT_EQ(r.fast_only.events + r.slow_only.events, r.all.events);
  EXPECT_FALSE(r.bandwidth_series.empty());
  EXPECT_GT(r.total_bytes, 0u);
}

}  // namespace
}  // namespace planetp::sim
