#!/usr/bin/env bash
# Full verification: configure, build, test (plain and under ASan/UBSan),
# and run every benchmark.
# Usage: scripts/check.sh [--quick]   (--quick shrinks the benchmark sweeps)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK="${1:-}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

# Tier-1 tests again under the sanitizer preset (-DPLANETP_SANITIZE accepts a
# -fsanitize list). A separate build dir keeps instrumented objects apart.
cmake -B build-asan -S . -DPLANETP_SANITIZE=address,undefined
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

for b in build/bench/*; do
  echo "=== $(basename "$b") ==="
  if [ "$QUICK" = "--quick" ]; then
    "$b" --quick
  else
    "$b"
  fi
done
