#include "search/ranker.hpp"

#include <algorithm>

#include "search/vector_model.hpp"

namespace planetp::search {

std::vector<ScoredDoc> score_documents(
    const index::InvertedIndex& idx,
    const std::unordered_map<std::string, double>& term_weights) {
  std::unordered_map<index::DocumentId, double, index::DocumentIdHash> acc;
  for (const auto& [term, weight] : term_weights) {
    if (weight <= 0.0) continue;
    for (const index::Posting& p : idx.postings(term)) {
      acc[p.doc] += doc_weight(p.term_freq) * weight;
    }
  }
  std::vector<ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, sum] : acc) {
    out.push_back(ScoredDoc{doc, sum * length_norm(idx.document_length(doc))});
  }
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  return out;
}

std::unordered_map<std::string, double> TfIdfRanker::idf_weights(
    const std::vector<std::string>& terms) const {
  std::unordered_map<std::string, double> weights;
  for (const std::string& t : terms) {
    if (weights.contains(t)) continue;
    weights.emplace(t, idf(index_->num_documents(), index_->collection_frequency(t)));
  }
  return weights;
}

std::vector<ScoredDoc> TfIdfRanker::top_k(const std::vector<std::string>& terms,
                                          std::size_t k) const {
  auto docs = score_documents(*index_, idf_weights(terms));
  truncate_top_k(docs, k);
  return docs;
}

void truncate_top_k(std::vector<ScoredDoc>& docs, std::size_t k) {
  if (docs.size() > k) docs.resize(k);
}

}  // namespace planetp::search
