#include "pfs/file_server.hpp"

namespace planetp::pfs {

std::string FileServer::make_url(const std::string& path) const {
  return "pfs://" + std::to_string(peer_id_) + "/" + path;
}

std::string FileServer::put(const std::string& path, std::string content) {
  files_[path] = std::move(content);
  return make_url(path);
}

std::optional<std::string> FileServer::url_for(const std::string& path) const {
  if (!files_.contains(path)) return std::nullopt;
  return make_url(path);
}

std::optional<std::string> FileServer::get(const std::string& url) const {
  const std::string prefix = "pfs://" + std::to_string(peer_id_) + "/";
  if (url.rfind(prefix, 0) != 0) return std::nullopt;
  auto it = files_.find(url.substr(prefix.size()));
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool FileServer::remove(const std::string& path) { return files_.erase(path) > 0; }

}  // namespace planetp::pfs
