#include "core/community.hpp"

#include <gtest/gtest.h>

namespace planetp::core {
namespace {

NodeConfig small_config() {
  NodeConfig cfg;
  cfg.bloom.bits = 65536;  // small filters keep tests fast
  return cfg;
}

TEST(Community, PublishIsSearchableFromOtherNodes) {
  Community community(small_config());
  Node& alice = community.create_node();
  Node& bob = community.create_node();

  alice.publish_text("Epidemic Algorithms", "epidemic algorithms for replicated databases");
  const auto result = bob.exhaustive_search("epidemic replicated");
  ASSERT_EQ(result.hits.size(), 1u);
  EXPECT_EQ(result.hits[0].title, "Epidemic Algorithms");
  EXPECT_EQ(result.hits[0].doc.peer, alice.id());
}

TEST(Community, ExhaustiveSearchIsConjunctive) {
  Community community(small_config());
  Node& a = community.create_node();
  Node& b = community.create_node();
  a.publish_text("one", "apples and oranges");
  a.publish_text("two", "apples and pears");
  const auto result = b.exhaustive_search("apples oranges");
  EXPECT_EQ(result.hits.size(), 1u);
}

TEST(Community, RankedSearchOrdersAcrossPeers) {
  Community community(small_config());
  Node& searcher = community.create_node();
  Node& heavy = community.create_node();
  Node& light = community.create_node();

  // heavy's doc mentions the query terms much more often.
  heavy.publish_text("focused", "gossip gossip gossip gossip protocol");
  light.publish_text("passing", "a gossip column about celebrities and long stories "
                                "with many other words diluting the term");

  const auto hits = searcher.ranked_search("gossip protocol", 5);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].title, "focused");
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(Community, RankedSearchIncludesOwnDocuments) {
  Community community(small_config());
  Node& solo = community.create_node();
  solo.publish_text("mine", "quasar observations");
  const auto hits = solo.ranked_search("quasar", 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc.peer, solo.id());
  EXPECT_FALSE(hits[0].xml.empty());
}

TEST(Community, UnpublishRemovesFromSearch) {
  Community community(small_config());
  Node& a = community.create_node();
  Node& b = community.create_node();
  const auto id = a.publish_text("temp", "ephemeral walrus content");
  ASSERT_EQ(b.exhaustive_search("ephemeral walrus").hits.size(), 1u);
  a.unpublish(id);
  EXPECT_TRUE(b.exhaustive_search("ephemeral walrus").hits.empty());
}

TEST(Community, OfflinePeersReportedAsCandidates) {
  Community community(small_config());
  Node& a = community.create_node();
  Node& b = community.create_node();
  Node& c = community.create_node();
  (void)a;
  b.publish_text("hidden", "obscure yeti sightings");
  community.set_online(b.id(), false);

  const auto result = c.exhaustive_search("obscure yeti");
  EXPECT_TRUE(result.hits.empty());
  // §2 advantage (4): the searcher knows documents may exist on the
  // offline peer.
  ASSERT_EQ(result.offline_candidates.size(), 1u);
  EXPECT_EQ(result.offline_candidates[0], b.id());
}

TEST(Community, PersistentQueryFiresOnLaterPublish) {
  Community community(small_config());
  Node& watcher = community.create_node();
  Node& publisher = community.create_node();

  std::vector<std::string> seen;
  watcher.add_persistent_query("submarine cables",
                               [&](const SearchHit& hit) { seen.push_back(hit.title); });
  EXPECT_TRUE(seen.empty());

  publisher.publish_text("Cables", "submarine cables across the atlantic");
  ASSERT_GE(seen.size(), 1u);
  EXPECT_EQ(seen[0], "Cables");

  // No duplicate upcall for the same document.
  const auto count = seen.size();
  publisher.publish_text("Unrelated", "volcanic ash plumes");
  EXPECT_EQ(seen.size(), count);
}

TEST(Community, PersistentQuerySeesPreexistingDocuments) {
  Community community(small_config());
  Node& publisher = community.create_node();
  publisher.publish_text("Old Doc", "ancient scrolls digitized");
  Node& watcher = community.create_node();

  std::vector<std::string> seen;
  watcher.add_persistent_query("ancient scrolls",
                               [&](const SearchHit& hit) { seen.push_back(hit.title); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "Old Doc");
}

TEST(Community, RemovePersistentQueryStopsUpcalls) {
  Community community(small_config());
  Node& watcher = community.create_node();
  Node& publisher = community.create_node();
  int calls = 0;
  const auto handle =
      watcher.add_persistent_query("krakatoa", [&](const SearchHit&) { ++calls; });
  EXPECT_TRUE(watcher.remove_persistent_query(handle));
  EXPECT_FALSE(watcher.remove_persistent_query(handle));
  publisher.publish_text("Eruption", "krakatoa eruption report");
  EXPECT_EQ(calls, 0);
}

TEST(Community, BrokerSnippetsFoundBeforeGossipInGossipMode) {
  // In gossip-step mode a fresh publish is invisible until rumors spread —
  // except through the brokerage service, which is the paper's motivation
  // for it (§4, §6).
  Community community(small_config(), SyncMode::kGossipStep);
  Node& a = community.create_node();
  Node& b = community.create_node();
  community.step_until_converged(10 * kMinute);

  // The broker keys are the document's *most frequent* terms (top 10%), so
  // make the query term dominate the document.
  a.publish_text("Fresh", "zeppelin zeppelin zeppelin maintenance manual");
  // No gossip steps yet: b's directory does not know a's new filter...
  const auto result = b.exhaustive_search("zeppelin");
  // ...but the broker ring already serves the snippet.
  EXPECT_FALSE(result.broker_hits.empty());
}

TEST(Community, GossipModeConvergesAfterPublish) {
  Community community(small_config(), SyncMode::kGossipStep);
  Node& a = community.create_node();
  Node& b = community.create_node();
  Node& c = community.create_node();
  (void)c;
  ASSERT_TRUE(community.step_until_converged(30 * kMinute));

  a.publish_text("News", "migratory patterns of arctic terns");
  ASSERT_TRUE(community.step_until_converged(30 * kMinute));

  const auto result = b.exhaustive_search("arctic terns");
  ASSERT_EQ(result.hits.size(), 1u);
  EXPECT_EQ(result.hits[0].title, "News");
}

TEST(Community, GossipModeRankedSearchEndToEnd) {
  Community community(small_config(), SyncMode::kGossipStep);
  Node& searcher = community.create_node();
  Node& p1 = community.create_node();
  Node& p2 = community.create_node();
  community.step_until_converged(30 * kMinute);

  p1.publish_text("Deep", "neural networks neural networks training");
  p2.publish_text("Shallow", "a passing mention of networks");
  ASSERT_TRUE(community.step_until_converged(30 * kMinute));

  const auto hits = searcher.ranked_search("neural networks", 2);
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].title, "Deep");
}

TEST(Community, RejoiningPeerAnnouncesItself) {
  Community community(small_config());
  Node& a = community.create_node();
  Node& b = community.create_node();
  b.publish_text("doc", "reappearing content marker");

  community.set_online(b.id(), false);
  auto result = a.exhaustive_search("reappearing marker");
  EXPECT_TRUE(result.hits.empty());

  community.set_online(b.id(), true);
  result = a.exhaustive_search("reappearing marker");
  EXPECT_EQ(result.hits.size(), 1u);
}

TEST(Community, FetchDocumentFromOwner) {
  Community community(small_config());
  Node& a = community.create_node();
  community.create_node();
  const auto id = a.publish_text("fetchable", "retrievable content");
  const index::Document* doc = community.fetch_document(id);
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->title, "fetchable");
}


TEST(Community, RendezvousSearchDeliversLateHits) {
  // §2 advantage (4): arrange to rendezvous with offline candidates.
  Community community(small_config());
  Node& searcher = community.create_node();
  Node& sleeper = community.create_node();
  sleeper.publish_text("Night Owl", "nocturnal aardvark habits");
  community.set_online(sleeper.id(), false);

  std::vector<std::string> late;
  auto [result, handle] = searcher.rendezvous_search(
      "nocturnal aardvark", [&](const SearchHit& hit) { late.push_back(hit.title); });
  EXPECT_TRUE(result.hits.empty());
  ASSERT_EQ(result.offline_candidates.size(), 1u);
  ASSERT_NE(handle, 0u);
  EXPECT_EQ(searcher.pending_rendezvous_peers(handle), 1u);
  EXPECT_TRUE(late.empty());

  // The sleeper reconnects: the queued query runs and the hit arrives.
  community.set_online(sleeper.id(), true);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0], "Night Owl");
  EXPECT_EQ(searcher.pending_rendezvous_peers(handle), 0u);  // auto-completed
}

TEST(Community, RendezvousWithNoOfflineCandidatesCompletesImmediately) {
  Community community(small_config());
  Node& searcher = community.create_node();
  Node& other = community.create_node();
  other.publish_text("Here", "immediately available ocelot data");

  int late_calls = 0;
  auto [result, handle] =
      searcher.rendezvous_search("ocelot", [&](const SearchHit&) { ++late_calls; });
  EXPECT_EQ(result.hits.size(), 1u);
  EXPECT_EQ(handle, 0u);  // nothing pending
  EXPECT_EQ(late_calls, 0);
}

TEST(Community, CancelledRendezvousStaysQuiet) {
  Community community(small_config());
  Node& searcher = community.create_node();
  Node& sleeper = community.create_node();
  sleeper.publish_text("Quiet", "cancellable ibex content");
  community.set_online(sleeper.id(), false);

  int calls = 0;
  auto [result, handle] =
      searcher.rendezvous_search("cancellable ibex", [&](const SearchHit&) { ++calls; });
  ASSERT_NE(handle, 0u);
  EXPECT_TRUE(searcher.cancel_rendezvous(handle));
  EXPECT_FALSE(searcher.cancel_rendezvous(handle));
  community.set_online(sleeper.id(), true);
  EXPECT_EQ(calls, 0);
}

TEST(Community, RendezvousDeduplicatesAgainstImmediateHits) {
  Community community(small_config());
  Node& searcher = community.create_node();
  Node& online_peer = community.create_node();
  Node& sleeper = community.create_node();
  online_peer.publish_text("Now", "wombat burrow engineering");
  sleeper.publish_text("Later", "wombat burrow maintenance");
  community.set_online(sleeper.id(), false);

  std::vector<std::string> late;
  auto [result, handle] = searcher.rendezvous_search(
      "wombat burrow", [&](const SearchHit& hit) { late.push_back(hit.title); });
  EXPECT_EQ(result.hits.size(), 1u);  // the online peer's doc, right away
  ASSERT_NE(handle, 0u);

  community.set_online(sleeper.id(), true);
  ASSERT_EQ(late.size(), 1u);  // only the sleeper's doc arrives late
  EXPECT_EQ(late[0], "Later");
}

}  // namespace
}  // namespace planetp::core
