#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

/// \file file_server.hpp
/// PFS's File Server (§6): "a very simple web server that provides two
/// functions: (a) return a URL when given a local pathname, (b) return the
/// content of the appropriate file in response to a GET operation."
///
/// Files are held in memory (the examples feed it synthetic content); a real
/// deployment would map paths to the local filesystem and URLs to an HTTP
/// listener — the interface is identical.

namespace planetp::pfs {

class FileServer {
 public:
  explicit FileServer(std::uint32_t peer_id) : peer_id_(peer_id) {}

  /// Register (or replace) a file; returns its URL.
  std::string put(const std::string& path, std::string content);

  /// (a) URL for a local pathname; nullopt when the path is unknown.
  std::optional<std::string> url_for(const std::string& path) const;

  /// (b) GET: content behind a URL served by this server.
  std::optional<std::string> get(const std::string& url) const;

  /// Remove a file; returns false when unknown.
  bool remove(const std::string& path);

  std::size_t file_count() const { return files_.size(); }

 private:
  std::string make_url(const std::string& path) const;

  std::uint32_t peer_id_;
  std::unordered_map<std::string, std::string> files_;  ///< path -> content
};

}  // namespace planetp::pfs
