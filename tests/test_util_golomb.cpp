#include "util/golomb.hpp"

#include <gtest/gtest.h>

#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace planetp {
namespace {

TEST(BitIo, WriteReadBits) {
  BitWriter w;
  w.write_bits(0b1011, 4);
  w.write_bits(0xff, 8);
  w.write_bits(0, 3);
  w.write_bits(1, 1);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(4), 0b1011u);
  EXPECT_EQ(r.read_bits(8), 0xffu);
  EXPECT_EQ(r.read_bits(3), 0u);
  EXPECT_EQ(r.read_bits(1), 1u);
}

TEST(BitIo, UnaryRoundtrip) {
  BitWriter w;
  for (std::uint64_t n : {0u, 1u, 5u, 17u}) w.write_unary(n);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_unary(), 0u);
  EXPECT_EQ(r.read_unary(), 1u);
  EXPECT_EQ(r.read_unary(), 5u);
  EXPECT_EQ(r.read_unary(), 17u);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write_bits(1, 1);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.read_bits(8);  // padded byte readable
  EXPECT_THROW(r.read_bits(1), std::out_of_range);
}

TEST(BitIo, SixtyFourBitValues) {
  BitWriter w;
  const std::uint64_t big = 0xfedcba9876543210ULL;
  w.write_bits(big, 64);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(64), big);
}

class GolombRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GolombRoundtrip, EncodeDecodeIdentity) {
  const std::uint64_t m = GetParam();
  Rng rng(m);
  std::vector<std::uint64_t> values = {0, 1, m, m + 1, 2 * m, 1000};
  for (int i = 0; i < 50; ++i) values.push_back(rng.below(100000));

  BitWriter w;
  for (std::uint64_t v : values) golomb_encode(w, v, m);
  const auto bytes = w.take();
  BitReader r(bytes);
  for (std::uint64_t v : values) {
    EXPECT_EQ(golomb_decode(r, m), v) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Params, GolombRoundtrip,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 10, 16, 63, 64, 100, 1000));

TEST(Golomb, ZeroMThrows) {
  BitWriter w;
  EXPECT_THROW(golomb_encode(w, 1, 0), std::invalid_argument);
}

TEST(Golomb, OptimalMGrowsWithSparsity) {
  // Sparser vectors need a larger parameter (longer expected gaps).
  const auto dense = golomb_optimal_m(1000, 2000);
  const auto sparse = golomb_optimal_m(10, 2000);
  EXPECT_LT(dense, sparse);
  EXPECT_GE(dense, 1u);
}

TEST(Golomb, OptimalMDegenerateCases) {
  EXPECT_EQ(golomb_optimal_m(0, 100), 1u);
  EXPECT_EQ(golomb_optimal_m(100, 0), 1u);
  EXPECT_EQ(golomb_optimal_m(100, 100), 1u);
}

class CompressBitsDensity : public ::testing::TestWithParam<double> {};

TEST_P(CompressBitsDensity, Roundtrip) {
  const double density = GetParam();
  Rng rng(static_cast<std::uint64_t>(density * 1000));
  BitVector bits(50'000);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (rng.chance(density)) bits.set(i);
  }
  const CompressedBits c = compress_bits(bits);
  const BitVector back = decompress_bits(c);
  EXPECT_EQ(back, bits);
}

INSTANTIATE_TEST_SUITE_P(Densities, CompressBitsDensity,
                         ::testing::Values(0.0, 0.0001, 0.001, 0.01, 0.05, 0.2, 0.5, 0.9));

TEST(CompressBits, SparseVectorsCompressWell) {
  // The wire-cost model in Table 2 prices a 1000-key filter at ~3 KB; with
  // two hashes that is ~2000 set bits in 409,600. Our Golomb coder should be
  // in that ballpark (it is the same scheme the paper used).
  Rng rng(77);
  BitVector bits(409'600);
  for (int i = 0; i < 2000; ++i) bits.set(rng.below(409'600));
  const CompressedBits c = compress_bits(bits);
  EXPECT_LT(c.byte_size(), 4500u);
  EXPECT_GT(c.byte_size(), 1500u);
}

TEST(CompressBits, EmptyVector) {
  const CompressedBits c = compress_bits(BitVector(1000));
  EXPECT_EQ(c.set_bits, 0u);
  EXPECT_EQ(decompress_bits(c), BitVector(1000));
}

TEST(CompressBits, FirstAndLastBits) {
  BitVector bits(1000);
  bits.set(0);
  bits.set(999);
  EXPECT_EQ(decompress_bits(compress_bits(bits)), bits);
}

TEST(CompressBits, CorruptStreamThrows) {
  BitVector bits(100);
  bits.set(50);
  CompressedBits c = compress_bits(bits);
  c.nbits = 40;  // claimed size smaller than encoded position
  EXPECT_THROW(decompress_bits(c), std::out_of_range);
}

TEST(Golomb, OptimalMEdgeDensities) {
  // Single-bit vectors: set_bits is necessarily 0 or 1, both degenerate.
  EXPECT_EQ(golomb_optimal_m(0, 1), 1u);
  EXPECT_EQ(golomb_optimal_m(1, 1), 1u);
  // Over-full input (corrupt header shape) must not blow up.
  EXPECT_EQ(golomb_optimal_m(200, 100), 1u);
  // One set bit in an enormous vector: log(1 - p) rounds to 0 in double and
  // the naive formula divides by zero; the result must stay finite, positive
  // and bounded by total_bits.
  const std::uint64_t huge = golomb_optimal_m(1, std::size_t{1} << 60);
  EXPECT_GE(huge, 1u);
  EXPECT_LE(huge, std::uint64_t{1} << 60);
  // ...and still near the 0.69/p rule of thumb where it is representable.
  const std::uint64_t m = golomb_optimal_m(1, 1'000'000);
  EXPECT_GT(m, 600'000u);
  EXPECT_LT(m, 800'000u);
}

TEST(CompressBits, RandomizedExtremeDensities) {
  Rng rng(2026);
  for (const std::size_t nbits : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                  std::size_t{63}, std::size_t{64}, std::size_t{65},
                                  std::size_t{1000}}) {
    // All densities from empty through full, including exactly one set bit.
    for (const double density : {0.0, 0.5, 1.0}) {
      for (int rep = 0; rep < 8; ++rep) {
        BitVector bits(nbits);
        for (std::size_t i = 0; i < nbits; ++i) {
          if (density == 1.0 || rng.chance(density)) bits.set(i);
        }
        const CompressedBits c = compress_bits(bits);
        EXPECT_EQ(decompress_bits(c), bits) << "nbits=" << nbits << " d=" << density;
      }
    }
    BitVector single(nbits);
    single.set(rng.below(nbits));
    EXPECT_EQ(decompress_bits(compress_bits(single)), single) << "nbits=" << nbits;
  }
}

TEST(Golomb, PositionsMatchForEachSet) {
  Rng rng(99);
  BitVector bits(4096);
  for (int i = 0; i < 300; ++i) bits.set(rng.below(4096));
  const CompressedBits c = compress_bits(bits);
  std::vector<std::uint64_t> expected;
  bits.for_each_set([&](std::size_t i) { expected.push_back(i); });
  EXPECT_EQ(golomb_positions(c), expected);
}

TEST(Golomb, CompressPositionsMatchesCompressBits) {
  Rng rng(7);
  BitVector bits(10'000);
  for (int i = 0; i < 500; ++i) bits.set(rng.below(10'000));
  std::vector<std::uint64_t> positions;
  bits.for_each_set([&](std::size_t i) { positions.push_back(i); });
  const CompressedBits direct = compress_bits(bits);
  const CompressedBits from_positions = compress_positions(positions, bits.size());
  EXPECT_EQ(from_positions.nbits, direct.nbits);
  EXPECT_EQ(from_positions.set_bits, direct.set_bits);
  EXPECT_EQ(from_positions.m, direct.m);
  EXPECT_EQ(from_positions.payload, direct.payload);
}

TEST(Golomb, XorMergeByteIdenticalToBitwiseXor) {
  // The at-rest directory applies gossiped XOR diffs in the gap domain; the
  // result must be byte-for-byte what a decode -> XOR -> re-encode produces,
  // across sparse, dense, disjoint and fully-overlapping inputs.
  Rng rng(123);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t nbits = 1 + rng.below(20'000);
    const double da = rep % 5 == 0 ? 0.9 : 0.01;
    const double db = rep % 3 == 0 ? 0.5 : 0.002;
    BitVector a(nbits);
    BitVector b(nbits);
    for (std::size_t i = 0; i < nbits; ++i) {
      if (rng.chance(da)) a.set(i);
      if (rng.chance(db)) b.set(i);
    }
    if (rep % 7 == 0) b = a;  // full cancellation -> empty result
    const CompressedBits merged = xor_merge(compress_bits(a), compress_bits(b));
    const CompressedBits oracle = compress_bits(a ^ b);
    EXPECT_EQ(merged.nbits, oracle.nbits);
    EXPECT_EQ(merged.set_bits, oracle.set_bits);
    EXPECT_EQ(merged.m, oracle.m);
    EXPECT_EQ(merged.payload, oracle.payload) << "rep=" << rep << " nbits=" << nbits;
    EXPECT_EQ(decompress_bits(merged), a ^ b);
  }
}

TEST(Golomb, XorMergeSizeMismatchThrows) {
  EXPECT_THROW(xor_merge(compress_bits(BitVector(100)), compress_bits(BitVector(200))),
               std::invalid_argument);
}

}  // namespace
}  // namespace planetp
