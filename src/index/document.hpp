#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file document.hpp
/// The published-document model of §2. A published XML document carries text
/// and optional links (XPointer-style hrefs) to external files; PlanetP
/// stores the XML in the publisher's local data store and indexes the text
/// plus the content of linked files of known types.

namespace planetp::index {

/// Community-unique document handle: (peer that published it, local id).
struct DocumentId {
  std::uint32_t peer = 0;
  std::uint32_t local = 0;

  bool operator==(const DocumentId&) const = default;
  auto operator<=>(const DocumentId&) const = default;
};

struct DocumentIdHash {
  std::size_t operator()(const DocumentId& id) const {
    return (static_cast<std::size_t>(id.peer) << 32) | id.local;
  }
};

/// A link from a published XML document to an external file.
struct ExternalLink {
  std::string href;          ///< target path or URL
  std::string content_type;  ///< "text", "postscript", "pdf", ... (empty = unknown)
  std::string content;       ///< extracted text when the type is known, else empty
};

/// A published document: the XML source plus pre-extracted indexable text.
struct Document {
  DocumentId id;
  std::string title;                ///< human name shown in results
  std::string xml_source;           ///< the stored XML document
  std::string text;                 ///< all indexable text (XML text + linked files)
  std::vector<ExternalLink> links;  ///< external files referenced by the XML
};

/// Build a Document from raw XML: parses it, extracts the text and links,
/// and pulls in the content of links whose type is indexable. Throws
/// std::runtime_error on malformed XML.
Document make_document(DocumentId id, std::string xml_source);

/// Convenience: wrap plain text in a minimal PlanetP XML envelope.
std::string wrap_text_as_xml(std::string_view title, std::string_view body);

}  // namespace planetp::index
