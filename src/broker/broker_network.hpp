#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "broker/hash_ring.hpp"
#include "broker/snippet_store.hpp"

/// \file broker_network.hpp
/// The information brokerage service (§4): the community's brokers arranged
/// on a consistent-hashing ring, with join/leave handoff. The service is an
/// *optimization*: it "makes no guarantee as to the safety of information
/// published to it. If a member leaves abruptly without passing on its
/// portion of the published data, that data will be lost."
///
/// This class models the broker overlay in-process (the live runtime routes
/// the same operations over TCP); PlanetP's correctness never depends on it.

namespace planetp::broker {

class BrokerNetwork {
 public:
  /// \p replication stores each (key, snippet) on the owner plus that many
  /// minus one ring successors, so a single abrupt departure loses nothing.
  /// The default (1) is the paper's unreplicated service; the longer TR's
  /// fault-tolerance work motivates values > 1.
  explicit BrokerNetwork(RingPoint max_id = RingPoint{1} << 32,
                         std::size_t replication = 1)
      : ring_(max_id), replication_(replication == 0 ? 1 : replication) {}

  /// A member starts offering brokerage. Keys that now map to it move from
  /// their previous owners (the join handoff).
  void join(NodeId node);

  /// Graceful departure: the node hands its stored snippets to the ring
  /// successor before leaving.
  void leave_gracefully(NodeId node);

  /// Abrupt departure: the node vanishes and its stored snippets are lost —
  /// the documented unreliability of the service.
  void leave_abruptly(NodeId node);

  /// Publish \p snippet under each of its keys; each key routes to its
  /// responsible broker. No-op when the ring is empty.
  void publish(const Snippet& snippet);

  /// Look up live snippets for \p key at \p now.
  std::vector<Snippet> lookup(const std::string& key, TimePoint now);

  /// Withdraw a snippet from every broker (early discard).
  void withdraw(NodeId publisher, std::uint64_t snippet_id);

  /// Expire old snippets everywhere.
  std::size_t sweep(TimePoint now);

  /// Which broker currently serves \p key (nullopt when ring empty).
  std::optional<NodeId> responsible_for(const std::string& key) const {
    return ring_.responsible_for(key);
  }

  std::size_t broker_count() const { return ring_.size(); }
  std::size_t total_snippets() const;

  /// Per-broker snippet counts (balance diagnostics / tests).
  std::unordered_map<NodeId, std::size_t> load() const;

  std::size_t replication() const { return replication_; }

 private:
  HashRing ring_;
  std::size_t replication_;
  std::unordered_map<NodeId, SnippetStore> stores_;
};

}  // namespace planetp::broker
