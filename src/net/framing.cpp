#include "net/framing.hpp"

#include <cstring>
#include <stdexcept>

namespace planetp::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame_size(frame));
  append_frame(out, frame);
  return out;
}

std::size_t frame_size(const Frame& frame) { return 4 + 4 + 1 + frame.payload.size(); }

void append_frame(std::vector<std::uint8_t>& out, const Frame& frame) {
  out.reserve(out.size() + frame_size(frame));
  const std::uint32_t body = 4 + 1 + static_cast<std::uint32_t>(frame.payload.size());
  put_u32(out, body);
  put_u32(out, frame.sender);
  out.push_back(static_cast<std::uint8_t>(frame.channel));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void FrameDecoder::set_max_frame_bytes(std::size_t cap) {
  max_frame_bytes_ = cap < kMaxFrameBytes ? cap : kMaxFrameBytes;
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  const std::uint32_t body = read_u32(buf_.data() + consumed_);
  if (body < 5 || body > max_frame_bytes_) {
    throw std::runtime_error("FrameDecoder: corrupt frame length");
  }
  if (avail < 4 + static_cast<std::size_t>(body)) return std::nullopt;

  Frame frame;
  const std::uint8_t* p = buf_.data() + consumed_ + 4;
  frame.sender = read_u32(p);
  frame.channel = static_cast<Channel>(p[4]);
  frame.payload.assign(p + 5, p + body);
  consumed_ += 4 + body;
  compact();
  return frame;
}

void FrameDecoder::compact() {
  // Avoid unbounded growth: slide the buffer once half of it is consumed.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

}  // namespace planetp::net
