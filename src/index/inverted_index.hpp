#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/document.hpp"

/// \file inverted_index.hpp
/// Per-peer inverted index: term -> postings (document, term frequency).
/// This is the structure each peer keeps over its local data store (§2); its
/// term set is what the peer's Bloom filter summarizes, and its postings
/// supply the f_{D,t} and |D| statistics of the ranking equations (§5.2).

namespace planetp::index {

struct Posting {
  DocumentId doc;
  std::uint32_t term_freq = 0;  ///< f_{D,t}

  bool operator==(const Posting&) const = default;
};

class InvertedIndex {
 public:
  /// Insert a document given its term -> frequency map. The document must
  /// not already be present.
  void add_document(DocumentId doc,
                    const std::unordered_map<std::string, std::uint32_t>& term_freqs);

  /// Remove a document and all its postings. Returns false if unknown.
  bool remove_document(DocumentId doc);

  /// Postings for a term (empty when absent).
  const std::vector<Posting>& postings(std::string_view term) const;

  /// Whether any document contains the term.
  bool contains_term(std::string_view term) const;

  /// f_{D,t}: frequency of \p term in \p doc (0 when absent).
  std::uint32_t term_frequency(std::string_view term, DocumentId doc) const;

  /// |D|: total number of term occurrences in the document (the paper's
  /// "number of terms in document D" used in the sqrt(|D|) normalizer).
  std::uint32_t document_length(DocumentId doc) const;

  /// f_t: total occurrences of \p term across the collection (for IDF).
  std::uint64_t collection_frequency(std::string_view term) const;

  /// Number of documents containing \p term.
  std::uint32_t document_frequency(std::string_view term) const;

  std::size_t num_documents() const { return doc_lengths_.size(); }
  std::size_t num_terms() const { return postings_.size(); }

  /// Iterate all distinct terms (used to build the Bloom filter).
  void for_each_term(const std::function<void(const std::string&)>& fn) const;

  /// All documents currently indexed.
  std::vector<DocumentId> documents() const;

 private:
  struct TermEntry {
    std::vector<Posting> postings;
    std::uint64_t collection_freq = 0;
  };

  std::unordered_map<std::string, TermEntry, std::hash<std::string>, std::equal_to<>> postings_;
  std::unordered_map<DocumentId, std::uint32_t, DocumentIdHash> doc_lengths_;
};

}  // namespace planetp::index
