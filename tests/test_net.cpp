#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "index/persistence.hpp"
#include "net/framing.hpp"
#include "net/live_node.hpp"
#include "net/rpc.hpp"

namespace planetp::net {
namespace {

TEST(Framing, EncodeDecodeSingleFrame) {
  Frame frame;
  frame.sender = 42;
  frame.channel = Channel::kRpc;
  frame.payload = {1, 2, 3, 4};

  FrameDecoder decoder;
  decoder.feed(encode_frame(frame));
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sender, 42u);
  EXPECT_EQ(out->channel, Channel::kRpc);
  EXPECT_EQ(out->payload, frame.payload);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Framing, HandlesPartialFeeds) {
  Frame frame;
  frame.sender = 7;
  frame.payload.assign(1000, 0xab);
  const auto bytes = encode_frame(frame);

  FrameDecoder decoder;
  // Feed one byte at a time; the frame must appear exactly once, at the end.
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(std::span<const std::uint8_t>(&bytes[i], 1));
    EXPECT_FALSE(decoder.next().has_value());
  }
  decoder.feed(std::span<const std::uint8_t>(&bytes.back(), 1));
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload.size(), 1000u);
}

TEST(Framing, HandlesCoalescedFrames) {
  Frame f1;
  f1.sender = 1;
  f1.payload = {9};
  Frame f2;
  f2.sender = 2;
  f2.channel = Channel::kRpc;
  f2.payload = {8, 7};

  auto bytes = encode_frame(f1);
  const auto more = encode_frame(f2);
  bytes.insert(bytes.end(), more.begin(), more.end());

  FrameDecoder decoder;
  decoder.feed(bytes);
  const auto a = decoder.next();
  const auto b = decoder.next();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->sender, 1u);
  EXPECT_EQ(b->sender, 2u);
  EXPECT_EQ(b->payload, (std::vector<std::uint8_t>{8, 7}));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Framing, EmptyPayloadFrame) {
  Frame frame;
  frame.sender = 5;
  FrameDecoder decoder;
  decoder.feed(encode_frame(frame));
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->payload.empty());
}

TEST(Framing, CorruptLengthThrows) {
  // A frame body length of 0 is impossible (minimum 5 bytes).
  const std::vector<std::uint8_t> bogus = {0, 0, 0, 0, 1, 2, 3, 4, 5};
  FrameDecoder decoder;
  decoder.feed(bogus);
  EXPECT_THROW(decoder.next(), std::runtime_error);
}

TEST(Rpc, RankedRoundtrip) {
  RankedRequest req;
  req.request_id = 99;
  req.weights = {{"gossip", 1.5}, {"bloom", 0.25}};
  const RpcMessage decoded = decode_rpc(encode_rpc(req));
  const auto* out = std::get_if<RankedRequest>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->request_id, 99u);
  ASSERT_EQ(out->weights.size(), 2u);
  EXPECT_EQ(out->weights[0].term, "gossip");
  EXPECT_DOUBLE_EQ(out->weights[1].weight, 0.25);
  EXPECT_EQ(rpc_request_id(decoded), 99u);
}

TEST(Rpc, ResponseRoundtrip) {
  RankedResponse resp;
  resp.request_id = 5;
  resp.docs = {{1, 2, 0.5, "title a"}, {3, 4, 0.25, ""}};
  const RpcMessage decoded = decode_rpc(encode_rpc(resp));
  const auto* out = std::get_if<RankedResponse>(&decoded);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->docs.size(), 2u);
  EXPECT_EQ(out->docs[0].title, "title a");
  EXPECT_EQ(out->docs[1].peer, 3u);
}

TEST(Rpc, FetchRoundtrip) {
  FetchResponse resp;
  resp.request_id = 8;
  resp.found = true;
  resp.title = "t";
  resp.xml = "<doc>x</doc>";
  const RpcMessage decoded = decode_rpc(encode_rpc(resp));
  const auto* out = std::get_if<FetchResponse>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->found);
  EXPECT_EQ(out->xml, "<doc>x</doc>");
}

// ---------------------------------------------------------------------------
// Live end-to-end over loopback TCP
// ---------------------------------------------------------------------------

LiveNodeConfig fast_config() {
  LiveNodeConfig cfg;
  cfg.bloom.bits = 65536;
  cfg.gossip.base_interval = 100 * kMillisecond;  // fast rounds for tests
  cfg.gossip.max_interval = 400 * kMillisecond;
  cfg.gossip.slow_down = 100 * kMillisecond;
  cfg.rpc_timeout = 3 * kSecond;
  return cfg;
}

TEST(LiveNode, ThreeNodesConvergeAndSearch) {
  LiveNode a(0, fast_config());
  LiveNode b(1, fast_config());
  LiveNode c(2, fast_config());
  a.start();
  b.start();
  c.start();

  b.join(0, a.address());
  c.join(0, a.address());

  ASSERT_TRUE(a.wait_for_peers(3, 20 * kSecond));
  ASSERT_TRUE(b.wait_for_peers(3, 20 * kSecond));
  ASSERT_TRUE(c.wait_for_peers(3, 20 * kSecond));

  b.publish_text("Gossip Paper", "gossiping builds content addressable communities");
  // Wait until c has seen b's filter-change version.
  ASSERT_TRUE(c.wait_for_version(1, 2, 30 * kSecond));

  const auto hits = c.ranked_search("gossiping communities", 5);
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].peer, 1u);
  EXPECT_EQ(hits[0].title, "Gossip Paper");

  const auto exhaustive = c.exhaustive_search("content addressable");
  ASSERT_EQ(exhaustive.size(), 1u);
  EXPECT_EQ(exhaustive[0].title, "Gossip Paper");

  const auto xml = c.fetch_document(exhaustive[0].peer, exhaustive[0].local);
  ASSERT_TRUE(xml.has_value());
  EXPECT_NE(xml->find("communities"), std::string::npos);

  c.stop();
  b.stop();
  a.stop();
}

TEST(LiveNode, LazyModeConvergesOverTcpWithoutBlindPayloads) {
  // Digest/want/serve over real sockets: once the membership introductions
  // (which legitimately travel eagerly — a digest about a peer you cannot
  // address is undeliverable news) have drained, a publish must move zero
  // blind payloads, and the body must still arrive (served as an RPC-class
  // frame, exempt from gossip backpressure shedding).
  LiveNodeConfig cfg = fast_config();
  cfg.gossip.rumor_mode = gossip::RumorMode::kLazy;
  cfg.gossip.delta_summaries = true;
  LiveNode a(0, cfg);
  LiveNode b(1, cfg);
  a.start();
  b.start();
  b.join(0, a.address());
  ASSERT_TRUE(a.wait_for_peers(2, 20 * kSecond));
  ASSERT_TRUE(b.wait_for_peers(2, 20 * kSecond));

  // Quiesce: wait until the join rumors have retired on both sides (no new
  // payload or digest sends across a full second of gossip rounds).
  const auto quiet = [&] {
    for (int i = 0; i < 100; ++i) {
      const auto a0 = a.net_stats().gossip;
      const auto b0 = b.net_stats().gossip;
      std::this_thread::sleep_for(std::chrono::seconds(1));
      const auto a1 = a.net_stats().gossip;
      const auto b1 = b.net_stats().gossip;
      if (a1.payloads_sent == a0.payloads_sent && b1.payloads_sent == b0.payloads_sent &&
          a1.digests_sent == a0.digests_sent && b1.digests_sent == b0.digests_sent) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(quiet());

  const NetStats a0 = a.net_stats();
  const NetStats b0 = b.net_stats();
  a.publish_text("Lazy Doc", "digest want serve exchange over tcp");
  ASSERT_TRUE(b.wait_for_version(0, 2, 30 * kSecond));

  const NetStats a1 = a.net_stats();
  EXPECT_EQ(a1.gossip.payloads_sent, a0.gossip.payloads_sent);
  EXPECT_GT(a1.gossip.digests_sent, a0.gossip.digests_sent);
  EXPECT_GT(a1.gossip.digest_ids_sent, a0.gossip.digest_ids_sent);
  const NetStats b1 = b.net_stats();
  EXPECT_EQ(b1.gossip.payloads_sent, b0.gossip.payloads_sent);
  // Every received digest is answered (want or already_knew), so the reply
  // counter is deterministic even if the body happened to arrive via an
  // anti-entropy pull first.
  EXPECT_GT(b1.gossip.wants_sent, b0.gossip.wants_sent);

  const auto hits = b.ranked_search("digest exchange", 5);
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].title, "Lazy Doc");

  b.stop();
  a.stop();
}

TEST(LiveNode, SearchFindsDocumentsOnMultiplePeers) {
  LiveNode a(0, fast_config());
  LiveNode b(1, fast_config());
  a.start();
  b.start();
  b.join(0, a.address());
  ASSERT_TRUE(a.wait_for_peers(2, 20 * kSecond));

  a.publish_text("A Doc", "shared flamingo observations in africa");
  b.publish_text("B Doc", "more flamingo observations from europe");
  ASSERT_TRUE(a.wait_for_version(1, 2, 30 * kSecond));
  ASSERT_TRUE(b.wait_for_version(0, 2, 30 * kSecond));

  const auto hits = a.ranked_search("flamingo observations", 10);
  EXPECT_EQ(hits.size(), 2u);

  b.stop();
  a.stop();
}

TEST(LiveNode, FetchMissingDocumentReturnsEmpty) {
  LiveNode a(0, fast_config());
  a.start();
  EXPECT_FALSE(a.fetch_document(0, 12345).has_value());
  a.stop();
}


TEST(LiveNode, SnippetRpcRoundtrip) {
  StoreSnippetRequest store;
  store.snippet = {7, 42, "<s>body</s>", {"k1", "k2"}, 5 * kSecond};
  const RpcMessage decoded = decode_rpc(encode_rpc(store));
  const auto* out = std::get_if<StoreSnippetRequest>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->snippet.publisher, 7u);
  EXPECT_EQ(out->snippet.snippet_id, 42u);
  EXPECT_EQ(out->snippet.keys, (std::vector<std::string>{"k1", "k2"}));
  EXPECT_EQ(out->snippet.ttl_us, 5 * kSecond);

  LookupSnippetResponse resp;
  resp.request_id = 9;
  resp.snippets.push_back({1, 2, "<x/>", {"a"}, kSecond});
  const RpcMessage decoded2 = decode_rpc(encode_rpc(resp));
  const auto* out2 = std::get_if<LookupSnippetResponse>(&decoded2);
  ASSERT_NE(out2, nullptr);
  ASSERT_EQ(out2->snippets.size(), 1u);
  EXPECT_EQ(out2->snippets[0].xml, "<x/>");
}

TEST(LiveNode, BrokeragePublishAndLookupAcrossPeers) {
  LiveNode a(0, fast_config());
  LiveNode b(1, fast_config());
  LiveNode c(2, fast_config());
  a.start();
  b.start();
  c.start();
  b.join(0, a.address());
  c.join(0, a.address());
  ASSERT_TRUE(a.wait_for_peers(3, 20 * kSecond));
  ASSERT_TRUE(b.wait_for_peers(3, 20 * kSecond));
  ASSERT_TRUE(c.wait_for_peers(3, 20 * kSecond));

  // b publishes a snippet; after routing settles, c can look it up through
  // the responsible broker, whoever that is.
  b.publish_snippet("<file href=\"u\">fresh content</file>", {"fresh", "content"},
                    30 * kSecond);
  std::vector<WireSnippet> found;
  for (int i = 0; i < 100 && found.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    found = c.lookup_snippets("fresh");
  }
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].publisher, 1u);
  EXPECT_NE(found[0].xml.find("fresh content"), std::string::npos);
  EXPECT_GT(found[0].ttl_us, 0);

  c.stop();
  b.stop();
  a.stop();
}

TEST(LiveNode, BrokeredSnippetsExpire) {
  LiveNode a(0, fast_config());
  a.start();
  a.publish_snippet("<x/>", {"ephemeral"}, 200 * kMillisecond);
  EXPECT_EQ(a.lookup_snippets("ephemeral").size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(a.lookup_snippets("ephemeral").empty());
  a.stop();
}


TEST(LiveNode, DirectorySnapshotReflectsMembership) {
  LiveNode a(0, fast_config());
  LiveNode b(1, fast_config());
  a.start();
  b.start();
  b.publish_text("Owned", "snapshot walrus content");
  b.join(0, a.address());
  ASSERT_TRUE(a.wait_for_peers(2, 20 * kSecond));

  const auto snapshot = a.directory_snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].id, 0u);
  EXPECT_EQ(snapshot[1].id, 1u);
  EXPECT_EQ(snapshot[1].address, b.address());
  EXPECT_TRUE(snapshot[1].online);
  EXPECT_GT(snapshot[1].key_count, 0u);  // b published before joining

  b.stop();
  a.stop();
}

TEST(LiveNode, RpcFailsFastWhenPeerCrashes) {
  LiveNodeConfig cfg = fast_config();
  cfg.search_retry.max_attempts = 1;  // isolate a single RPC's latency
  LiveNode a(0, cfg);
  LiveNode b(1, cfg);
  a.start();
  b.start();
  b.join(0, a.address());
  ASSERT_TRUE(a.wait_for_peers(2, 20 * kSecond));

  // b dies; a's next synchronous RPC to it must fail the moment the
  // transport reports the connect refused — not after the full 3 s timeout.
  b.stop();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(a.fetch_document(1, 0).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500))
      << "unreachable peer burned the rpc timeout";

  a.stop();
}

TEST(LiveNode, SerializedStoreRestoresAcrossRestart) {
  std::vector<std::uint8_t> snapshot;
  {
    LiveNode a(0, fast_config());
    a.start();
    a.publish_text("Durable", "persistent ptarmigan records");
    a.publish_text("Second", "more ptarmigan data");
    snapshot = a.serialize_store();
    a.stop();
  }
  const index::DataStore restored =
      index::deserialize_data_store(snapshot, fast_config().bloom);
  EXPECT_EQ(restored.num_documents(), 2u);
  EXPECT_EQ(restored.search_all_terms("ptarmigan").size(), 2u);

  // A new node seeded from the snapshot serves the same content.
  LiveNode reborn(0, fast_config());
  for (const index::DocumentId& id : restored.documents()) {
    reborn.publish(restored.document(id)->xml_source);
  }
  reborn.start();
  EXPECT_EQ(reborn.exhaustive_search("ptarmigan").size(), 2u);
  reborn.stop();
}

}  // namespace
}  // namespace planetp::net
